// Capture-realism tests: the sim::CaptureChannel impairment stage, the
// degradation-aware analyzer properties it enables, the fluent validated
// config builders, the unified FlowSink delivery surface, and the pcap
// snaplen regression fixture.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "net/ipv4.h"
#include "pcap/pcap.h"
#include "sim/capture_channel.h"
#include "tapo/csv.h"
#include "tapo/live.h"
#include "tapo/tapo.h"
#include "workload/experiment.h"
#include "workload/runner.h"

namespace tapo {
namespace {

net::CapturedPacket make_pkt(std::int64_t us, std::uint32_t seq,
                             std::uint32_t payload, bool from_server) {
  net::CapturedPacket p;
  p.timestamp = TimePoint::from_us(us);
  if (from_server) {
    p.key = {net::ipv4_from_string("192.168.1.1"),
             net::ipv4_from_string("10.0.0.1"), 80, 40000};
  } else {
    p.key = {net::ipv4_from_string("10.0.0.1"),
             net::ipv4_from_string("192.168.1.1"), 40000, 80};
  }
  p.tcp.seq = net::Seq32{seq};
  p.tcp.ack = net::Seq32{1};
  p.tcp.flags.ack = true;
  p.tcp.window = 1000;
  p.payload_len = payload;
  return p;
}

net::PacketTrace make_trace(std::size_t n) {
  net::PacketTrace trace;
  for (std::size_t i = 0; i < n; ++i) {
    trace.add(make_pkt(1000 * static_cast<std::int64_t>(i) + 7,
                       static_cast<std::uint32_t>(1 + i * 1448),
                       i % 2 == 0 ? 1448 : 0, i % 2 == 0));
  }
  return trace;
}

bool same_record(const net::CapturedPacket& a, const net::CapturedPacket& b) {
  return a.timestamp == b.timestamp && a.key == b.key &&
         a.tcp.seq == b.tcp.seq && a.tcp.ack == b.tcp.ack &&
         a.payload_len == b.payload_len && a.truncated == b.truncated &&
         a.tcp.window == b.tcp.window &&
         a.tcp.sack_blocks.size() == b.tcp.sack_blocks.size();
}

// ---------------------------------------------------------------------------
// CaptureChannel unit behavior
// ---------------------------------------------------------------------------

TEST(CaptureChannel, OffIsBitIdenticalClone) {
  const auto trace = make_trace(50);
  sim::CaptureImpairments off;
  EXPECT_FALSE(off.enabled());
  sim::CaptureChannelStats stats;
  const auto out = sim::apply_impairments(trace, off, &stats);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(same_record(trace[i], out[i])) << "record " << i;
  }
  EXPECT_EQ(stats.seen, 50u);
  EXPECT_EQ(stats.delivered, 50u);
  EXPECT_EQ(stats.dropped + stats.duplicated + stats.truncated +
                stats.reordered + stats.skipped_head,
            0u);
}

TEST(CaptureChannel, SameSeedSameOutput) {
  const auto trace = make_trace(200);
  const auto imp = sim::CaptureImpairments{}
                       .with_drop(0.3)
                       .with_duplication(0.2)
                       .with_reordering(0.2)
                       .with_seed(42);
  const auto a = sim::apply_impairments(trace, imp);
  const auto b = sim::apply_impairments(trace, imp);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_record(a[i], b[i])) << "record " << i;
  }
}

TEST(CaptureChannel, DropRemovesRecords) {
  const auto trace = make_trace(400);
  sim::CaptureChannelStats stats;
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_drop(0.5), &stats);
  EXPECT_LT(out.size(), trace.size());
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, out.size());
  EXPECT_EQ(stats.seen, trace.size());
}

TEST(CaptureChannel, BurstDropRemovesRuns) {
  const auto trace = make_trace(400);
  sim::CaptureChannelStats stats;
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_burst_drop(0.1, 0.8), &stats);
  EXPECT_LT(out.size(), trace.size());
  EXPECT_GT(stats.dropped, 0u);
}

TEST(CaptureChannel, DuplicationEmitsAdjacentIdenticalCopies) {
  const auto trace = make_trace(200);
  sim::CaptureChannelStats stats;
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_duplication(0.5), &stats);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_EQ(out.size(), trace.size() + stats.duplicated);
  // Every duplicate is adjacent to and identical with its original,
  // timestamp included (mirror-port semantics).
  std::size_t found = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (same_record(out[i - 1], out[i])) ++found;
  }
  EXPECT_EQ(found, stats.duplicated);
}

TEST(CaptureChannel, SnaplenCutsTailOptions) {
  net::PacketTrace trace;
  auto p = make_pkt(1000, 1, 0, false);
  p.tcp.sack_blocks = {{net::Seq32{2897}, net::Seq32{4345}},
                       {net::Seq32{5793}, net::Seq32{7241}}};
  trace.add(p);
  sim::CaptureChannelStats stats;
  // 40 wire bytes = IPv4 + fixed TCP header: every option is cut.
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_snaplen(40), &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].truncated);
  EXPECT_EQ(out[0].tcp.sack_blocks.size(), 0u);
  EXPECT_EQ(stats.truncated, 1u);
  // Lengths still reflect the wire packet (pcap reader model).
  EXPECT_EQ(out[0].payload_len, trace[0].payload_len);
}

TEST(CaptureChannel, ReorderSwapsAdjacentRecords) {
  const auto trace = make_trace(200);
  sim::CaptureChannelStats stats;
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_reordering(0.5), &stats);
  ASSERT_EQ(out.size(), trace.size());
  EXPECT_GT(stats.reordered, 0u);
  // Same multiset of records: every input appears exactly once.
  std::size_t displaced = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!same_record(out[i], trace[i])) ++displaced;
  }
  EXPECT_GT(displaced, 0u);
  EXPECT_LE(displaced, 2 * stats.reordered);
}

TEST(CaptureChannel, QuantizeFloorsTimestamps) {
  const auto trace = make_trace(50);
  const auto out = sim::apply_impairments(
      trace,
      sim::CaptureImpairments{}.with_quantization(Duration::micros(100)));
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].timestamp.us() % 100, 0);
    EXPECT_LE(out[i].timestamp, trace[i].timestamp);
    EXPECT_GT(out[i].timestamp + Duration::micros(100), trace[i].timestamp);
  }
}

TEST(CaptureChannel, JitterIsBounded) {
  const auto trace = make_trace(50);
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_jitter(Duration::micros(50)));
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const auto delta = (out[i].timestamp - trace[i].timestamp).us();
    EXPECT_LE(delta, 50);
    EXPECT_GE(delta, -50);
  }
}

TEST(CaptureChannel, MidStreamStartSkipsHead) {
  const auto trace = make_trace(50);
  sim::CaptureChannelStats stats;
  const auto out = sim::apply_impairments(
      trace, sim::CaptureImpairments{}.with_mid_stream_start(3), &stats);
  ASSERT_EQ(out.size(), trace.size() - 3);
  EXPECT_EQ(stats.skipped_head, 3u);
  EXPECT_TRUE(same_record(out[0], trace[3]));
}

TEST(CaptureChannel, BuilderValidationThrows) {
  sim::CaptureImpairments imp;
  EXPECT_THROW(imp.with_drop(1.0), std::invalid_argument);
  EXPECT_THROW(imp.with_drop(-0.1), std::invalid_argument);
  EXPECT_THROW(imp.with_burst_drop(1.5, 0.5), std::invalid_argument);
  EXPECT_THROW(imp.with_burst_drop(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(imp.with_snaplen(39), std::invalid_argument);
  EXPECT_THROW(imp.with_duplication(1.0), std::invalid_argument);
  EXPECT_THROW(imp.with_reordering(-0.5), std::invalid_argument);
  EXPECT_THROW(imp.with_quantization(Duration::zero()),
               std::invalid_argument);
  EXPECT_THROW(imp.with_jitter(Duration::micros(-1)), std::invalid_argument);

  // Aggregate-init with bad fields is caught by validate().
  sim::CaptureImpairments bad;
  bad.drop_prob = 2.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // validate() failure at the experiment boundary too.
  workload::ExperimentConfig cfg;
  EXPECT_THROW(cfg.with_impairments(bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Degradation-aware analysis properties
// ---------------------------------------------------------------------------

using CauseList = std::vector<std::vector<analysis::StallCause>>;

CauseList run_causes(workload::Service svc, std::size_t flows,
                     const sim::CaptureImpairments& imp,
                     const analysis::AnalyzerConfig& acfg) {
  auto cfg = workload::ExperimentConfig{}
                 .with_profile(workload::profile_for(svc))
                 .with_flows(flows)
                 .with_seed(2015)
                 .with_analyzer(acfg);
  if (imp.enabled()) cfg.with_impairments(imp);
  workload::CollectingSink sink;
  workload::ParallelRunner(cfg, {}).run(sink);
  CauseList out;
  for (const auto& fa : sink.take().analyses) {
    std::vector<analysis::StallCause> causes;
    for (const auto& s : fa.stalls) causes.push_back(s.cause);
    out.push_back(std::move(causes));
  }
  return out;
}

const workload::Service kAllServices[] = {
    workload::Service::kCloudStorage, workload::Service::kSoftwareDownload,
    workload::Service::kWebSearch};

TEST(CaptureRealism, DupOnlyClassifiesIdenticallyWithSuppression) {
  const auto acfg =
      analysis::AnalyzerConfig{}.with_dup_window(Duration::micros(1));
  for (auto svc : kAllServices) {
    const auto pristine =
        run_causes(svc, 20, sim::CaptureImpairments{}, acfg);
    const auto impaired = run_causes(
        svc, 20, sim::CaptureImpairments{}.with_duplication(0.1), acfg);
    EXPECT_EQ(pristine, impaired) << workload::to_string(svc);
  }
}

TEST(CaptureRealism, QuantizationOnlyClassifiesIdenticallyWithQuantum) {
  const auto quantum = Duration::micros(100);
  const auto acfg = analysis::AnalyzerConfig{}.with_ts_quantum(quantum);
  for (auto svc : kAllServices) {
    const auto pristine =
        run_causes(svc, 20, sim::CaptureImpairments{}, acfg);
    const auto impaired = run_causes(
        svc, 20, sim::CaptureImpairments{}.with_quantization(quantum), acfg);
    EXPECT_EQ(pristine, impaired) << workload::to_string(svc);
  }
}

TEST(CaptureRealism, MidStreamStartNoSpuriousDataUnavailable) {
  for (auto svc : kAllServices) {
    const auto pristine =
        run_causes(svc, 20, sim::CaptureImpairments{}, {});
    const auto impaired = run_causes(
        svc, 20, sim::CaptureImpairments{}.with_mid_stream_start(3), {});
    ASSERT_EQ(pristine.size(), impaired.size()) << workload::to_string(svc);
    for (std::size_t i = 0; i < pristine.size(); ++i) {
      const auto count = [](const std::vector<analysis::StallCause>& v) {
        std::size_t n = 0;
        for (auto c : v) {
          if (c == analysis::StallCause::kDataUnavailable) ++n;
        }
        return n;
      };
      // A rotated capture must never invent back-end-fetch stalls that the
      // full capture did not see.
      EXPECT_LE(count(impaired[i]), count(pristine[i]))
          << workload::to_string(svc) << " flow " << i;
    }
  }
}

TEST(CaptureRealism, DegradedFlowsCarryCaptureQuality) {
  auto cfg = workload::ExperimentConfig{}
                 .with_profile(workload::profile_for(
                     workload::Service::kSoftwareDownload))
                 .with_flows(20)
                 .with_seed(2015)
                 .with_impairments(
                     sim::CaptureImpairments{}.with_drop(0.05).with_snaplen(54));
  workload::CollectingSink sink;
  workload::ParallelRunner(cfg, {}).run(sink);
  const auto result = sink.take();
  ASSERT_FALSE(result.analyses.empty());
  std::size_t degraded = 0;
  for (const auto& fa : result.analyses) {
    if (!fa.capture.degraded()) continue;
    ++degraded;
    EXPECT_GT(fa.capture.seq_gaps + fa.capture.truncated_packets, 0u);
    EXPECT_LT(fa.capture.confidence, 1.0);
    EXPECT_GE(fa.capture.confidence, 0.0);
  }
  EXPECT_GT(degraded, 0u);
}

// ---------------------------------------------------------------------------
// Fluent validated config builders
// ---------------------------------------------------------------------------

TEST(ConfigBuilders, AnalyzerConfigValidates) {
  analysis::AnalyzerConfig a;
  EXPECT_THROW(a.with_tau(0.0), std::invalid_argument);
  EXPECT_THROW(a.with_dupthres(0), std::invalid_argument);
  EXPECT_THROW(a.with_small_inflight(0), std::invalid_argument);
  EXPECT_THROW(a.with_rto_fraction(0.0), std::invalid_argument);
  EXPECT_THROW(a.with_dup_window(Duration::micros(-1)),
               std::invalid_argument);
  EXPECT_THROW(a.with_ts_quantum(Duration::micros(-1)),
               std::invalid_argument);

  const auto ok = analysis::AnalyzerConfig{}
                      .with_tau(1.5)
                      .with_dupthres(2)
                      .with_dup_window(Duration::micros(5))
                      .with_ts_quantum(Duration::micros(10));
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.suppress_capture_dups);

  // Aggregate init keeps working and the Analyzer ctor validates.
  analysis::AnalyzerConfig bad;
  bad.tau = -1.0;
  EXPECT_THROW(analysis::Analyzer{bad}, std::invalid_argument);
}

TEST(ConfigBuilders, DemuxOptionsValidates) {
  analysis::DemuxOptions d;
  EXPECT_THROW(d.with_min_packets(0), std::invalid_argument);
  EXPECT_NO_THROW(d.with_server_port(8080).with_min_packets(2).validate());

  analysis::DemuxOptions bad;
  bad.min_packets = 0;
  net::PacketTrace trace;
  EXPECT_THROW(analysis::demux_flow_views(trace, bad), std::invalid_argument);
}

TEST(ConfigBuilders, LiveConfigValidates) {
  analysis::LiveConfig c;
  EXPECT_THROW(c.with_idle_timeout(Duration::zero()), std::invalid_argument);
  EXPECT_THROW(c.with_fin_linger(Duration::micros(-1)),
               std::invalid_argument);
  EXPECT_THROW(c.with_max_flows(0), std::invalid_argument);
  EXPECT_THROW(c.with_max_packets_per_flow(1), std::invalid_argument);
  EXPECT_NO_THROW(analysis::LiveConfig{}
                      .with_idle_timeout(Duration::seconds(1.0))
                      .with_max_flows(10)
                      .validate());

  analysis::LiveConfig bad;
  bad.max_flows = 0;
  EXPECT_THROW(analysis::LiveAnalyzer(bad, nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Unified FlowSink delivery surface
// ---------------------------------------------------------------------------

class CountingSink : public FlowSink {
 public:
  void consume(FlowResult&& result) override {
    ++consumed_;
    analyses_ += result.analyses.size();
    last_index_ = result.index;
  }
  void finish(const RunStats& stats) override {
    ++finished_;
    finish_flows_ = stats.flows;
  }

  std::size_t consumed_ = 0;
  std::size_t analyses_ = 0;
  std::size_t last_index_ = 0;
  std::size_t finished_ = 0;
  std::uint64_t finish_flows_ = 0;
};

TEST(SinkUnification, LiveAnalyzerFeedsFlowSink) {
  // Capture one simulated flow and stream its packets through the live
  // analyzer into the shared sink API.
  Rng rng(7);
  auto scenario = workload::draw_scenario(
      workload::profile_for(workload::Service::kWebSearch), rng, 1);
  const auto outcome =
      workload::run_flow(scenario, rng.split(), Duration::seconds(60.0),
                         workload::TraceCapture::kServerNic);
  ASSERT_TRUE(outcome.trace.has_value());
  ASSERT_GT(outcome.trace->size(), 0u);

  CountingSink sink;
  analysis::LiveAnalyzer live(analysis::LiveConfig{}, sink);
  for (const auto& pkt : outcome.trace->packets()) live.add_packet(pkt);
  live.flush();

  EXPECT_GE(sink.consumed_, 1u);
  EXPECT_GE(sink.analyses_, 1u);
  EXPECT_EQ(sink.finished_, 1u);
  EXPECT_EQ(sink.finish_flows_, sink.consumed_);
}

TEST(SinkUnification, CsvSinkMatchesBatchWriters) {
  auto cfg = workload::ExperimentConfig{}
                 .with_profile(
                     workload::profile_for(workload::Service::kWebSearch))
                 .with_flows(12)
                 .with_seed(2015);

  workload::CollectingSink collecting;
  workload::ParallelRunner(cfg, {}).run(collecting);
  const auto result = collecting.take();
  // The streaming sink ids rows by flow index; the batch writer by dense
  // analysis order. They coincide exactly when every flow analyzed.
  ASSERT_EQ(result.analyses.size(), cfg.flows);

  std::ostringstream batch_flows, batch_stalls;
  analysis::write_flows_csv(batch_flows, result.analyses);
  analysis::write_stalls_csv(batch_stalls, result.analyses);

  std::ostringstream live_flows, live_stalls;
  {
    analysis::CsvSink csv(live_flows, &live_stalls);
    workload::ParallelRunner(cfg, {}).run(csv);
  }
  EXPECT_EQ(batch_flows.str(), live_flows.str());
  EXPECT_EQ(batch_stalls.str(), live_stalls.str());
}

// ---------------------------------------------------------------------------
// pcap snaplen end-to-end regression
// ---------------------------------------------------------------------------

TEST(PcapSnaplen, TruncatedOptionsSurviveRoundTripAndAnalysis) {
  net::PacketTrace trace;
  auto syn = make_pkt(1'000'000, 0, 0, false);
  syn.tcp.flags = net::TcpFlags{};
  syn.tcp.flags.syn = true;
  syn.tcp.mss = 1448;
  syn.tcp.sack_permitted = true;
  syn.tcp.window_scale = 7;
  trace.add(syn);
  trace.add(make_pkt(1'100'000, 1, 1448, true));
  auto ack = make_pkt(1'200'000, 1, 0, false);
  ack.tcp.sack_blocks = {{net::Seq32{2897}, net::Seq32{4345}}};
  trace.add(ack);

  // Snaplen 44 = IPv4(20) + fixed TCP(20) + 4 option bytes: the SYN keeps
  // its MSS option but loses the rest; the SACK block is cut entirely.
  std::stringstream ss;
  pcap::write_stream(ss, trace, {.snaplen = 44});
  pcap::ReadStats stats;
  const auto back = pcap::read_stream(ss, &stats);

  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_TRUE(back[0].truncated);
  EXPECT_TRUE(back[2].truncated);
  EXPECT_FALSE(back[1].truncated);  // no options to cut
  EXPECT_EQ(back[2].tcp.sack_blocks.size(), 0u);
  // Wire lengths preserved even though bytes are missing.
  EXPECT_EQ(back[1].payload_len, 1448u);

  // The analyzer consumes the degraded capture and reports the truncation.
  const auto result =
      analysis::Analyzer{}.analyze(back, analysis::DemuxOptions{}
                                             .with_min_packets(1));
  ASSERT_EQ(result.flows.size(), 1u);
  EXPECT_EQ(result.flows[0].capture.truncated_packets, 2u);
  EXPECT_LT(result.flows[0].capture.confidence, 1.0);
}

}  // namespace
}  // namespace tapo
