// Tests for the sender extensions beyond the measured 2.6.32 kernel:
// pacing (§4.3's suggested continuous-loss mitigation), F-RTO-style
// spurious-timeout undo, and adaptive S-RTO probe suppression (the paper's
// stated future work).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tcp/connection.h"
#include "tcp/sender.h"
#include "util/rng.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr net::Seq32 kIsn{1};

struct Harness {
  sim::Simulator sim;
  std::vector<TcpSender::SegmentOut> sent;
  std::vector<TimePoint> sent_at;
  std::unique_ptr<TcpSender> sender;

  explicit Harness(SenderConfig cfg) {
    sender = std::make_unique<TcpSender>(
        sim, cfg, [this](const TcpSender::SegmentOut& s) {
          sent.push_back(s);
          sent_at.push_back(sim.now());
        });
    sender->start(kIsn);
    for (int i = 0; i < 20; ++i) sender->seed_rtt(Duration::millis(100));
  }

  void ack(net::Seq32 a, std::vector<net::SackBlock> sacks = {},
           std::optional<net::SackBlock> dsack = std::nullopt) {
    sender->on_ack(a, 1 << 20, sacks, dsack);
  }
  void advance(Duration d) { sim.run_until(sim.now() + d); }
  net::Seq32 seg(int i) const {
    return kIsn + static_cast<std::uint32_t>(i) * kMss;
  }
};

SenderConfig base_config() {
  SenderConfig cfg;
  cfg.mss = kMss;
  cfg.init_cwnd = 4;
  cfg.cc = CcAlgo::kReno;
  return cfg;
}

// ---- Pacing ----

TEST(Pacing, SpacesTransmissionsAcrossTheRtt) {
  SenderConfig cfg = base_config();
  cfg.pacing = true;
  Harness h(cfg);
  h.sender->app_write(4 * kMss);
  // Only the first segment goes out instantly.
  EXPECT_EQ(h.sent.size(), 1u);
  h.advance(Duration::millis(200));
  EXPECT_EQ(h.sent.size(), 4u);
  // Consecutive gaps ~ SRTT / cwnd = 25 ms.
  for (std::size_t i = 1; i < h.sent_at.size(); ++i) {
    const Duration gap = h.sent_at[i] - h.sent_at[i - 1];
    EXPECT_GE(gap, Duration::millis(20));
    EXPECT_LE(gap, Duration::millis(35));
  }
}

TEST(Pacing, DisabledSendsFullBurst) {
  Harness h(base_config());
  h.sender->app_write(4 * kMss);
  EXPECT_EQ(h.sent.size(), 4u);
  EXPECT_EQ(h.sent_at.front(), h.sent_at.back());
}

TEST(Pacing, RetransmissionsAreNotPaced) {
  SenderConfig cfg = base_config();
  cfg.pacing = true;
  Harness h(cfg);
  h.sender->app_write(4 * kMss);
  h.advance(Duration::millis(250));
  ASSERT_EQ(h.sent.size(), 4u);
  // RTO fires: the head retransmission goes out immediately with the timer.
  h.advance(Duration::millis(400));
  ASSERT_GE(h.sent.size(), 5u);
  EXPECT_TRUE(h.sent[4].retransmission);
}

TEST(Pacing, ReducesQueueDropsAtBottleneck) {
  // A shallow drop-tail queue: a bursty sender overflows it, a paced one
  // does not. This is the §4.3 continuous-loss mitigation in action.
  auto run = [](bool pacing) {
    sim::Simulator sim;
    sim::LinkConfig down_cfg;
    down_cfg.prop_delay = Duration::millis(50);
    down_cfg.bandwidth_Bps = 2'000'000;
    down_cfg.queue_packets = 8;  // shallow
    sim::LinkConfig up_cfg;
    up_cfg.prop_delay = Duration::millis(50);
    sim::Link down(sim, down_cfg, Rng(1));
    sim::Link up(sim, up_cfg, Rng(2));
    ConnectionConfig cfg;
    cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                            net::ipv4_from_string("192.168.1.1"), 40001, 80};
    cfg.sender.pacing = pacing;
    RequestSpec req;
    req.response_bytes = 400'000;
    cfg.requests.push_back(req);
    Connection conn(sim, down, up, cfg, nullptr);
    conn.start();
    sim.run_until(sim.now() + Duration::seconds(300.0));
    EXPECT_TRUE(conn.done());
    return down.stats().dropped_queue;
  };
  const auto bursty_drops = run(false);
  const auto paced_drops = run(true);
  EXPECT_LT(paced_drops, bursty_drops);
}

TEST(Pacing, CwndStillGrowsWhilePaced) {
  SenderConfig cfg = base_config();
  cfg.pacing = true;
  Harness h(cfg);
  h.sender->app_write(60 * kMss);
  h.advance(Duration::millis(100));
  const auto before = h.sender->cwnd();
  h.ack(h.seg(2));
  h.ack(h.seg(4));
  EXPECT_GT(h.sender->cwnd(), before);
}

// ---- Spurious RTO undo (F-RTO-style) ----

TEST(SpuriousRtoUndo, RestoresWindowOnDsack) {
  SenderConfig cfg = base_config();
  cfg.spurious_rto_undo = true;
  Harness h(cfg);
  h.sender->app_write(20 * kMss);
  h.advance(Duration::millis(100));
  h.ack(h.seg(4));  // grow window a little
  const std::uint32_t cwnd_before = h.sender->cwnd();
  ASSERT_GT(cwnd_before, 1u);
  // Silence -> RTO fires (in reality the path just got slow).
  h.advance(Duration::millis(500));
  ASSERT_GE(h.sender->stats().rto_fires, 1u);
  ASSERT_EQ(h.sender->state(), CaState::kLoss);
  ASSERT_EQ(h.sender->cwnd(), 1u);
  // The delayed original arrives: client acks everything + DSACK for the
  // retransmitted head.
  h.sender->on_ack(h.sender->snd_nxt(), 1 << 20, {},
                   net::SackBlock{h.seg(4), h.seg(5)});
  EXPECT_EQ(h.sender->stats().spurious_rto_undos, 1u);
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
  EXPECT_GE(h.sender->cwnd(), cwnd_before);
}

TEST(SpuriousRtoUndo, DisabledKeepsCollapse) {
  SenderConfig cfg = base_config();
  cfg.spurious_rto_undo = false;
  Harness h(cfg);
  h.sender->app_write(20 * kMss);
  h.advance(Duration::millis(100));
  h.ack(h.seg(4));
  h.advance(Duration::millis(500));
  ASSERT_GE(h.sender->stats().rto_fires, 1u);
  h.sender->on_ack(h.seg(6), 1 << 20, {}, net::SackBlock{h.seg(4), h.seg(5)});
  EXPECT_EQ(h.sender->stats().spurious_rto_undos, 0u);
  EXPECT_NE(h.sender->state(), CaState::kOpen);
}

TEST(SpuriousRtoUndo, UnrelatedDsackDoesNotUndo) {
  SenderConfig cfg = base_config();
  cfg.spurious_rto_undo = true;
  Harness h(cfg);
  h.sender->app_write(20 * kMss);
  h.advance(Duration::millis(100));
  h.ack(h.seg(4));
  h.advance(Duration::millis(500));
  ASSERT_GE(h.sender->stats().rto_fires, 1u);
  // DSACK for a segment the RTO did not retransmit.
  h.sender->on_ack(h.seg(4), 1 << 20, {}, net::SackBlock{h.seg(1), h.seg(2)});
  EXPECT_EQ(h.sender->stats().spurious_rto_undos, 0u);
}

// ---- Adaptive S-RTO ----

SenderConfig adaptive_srto_config() {
  SenderConfig cfg = base_config();
  cfg.recovery = RecoveryMechanism::kSrto;
  cfg.srto.t1 = 10;
  cfg.srto.adaptive = true;
  cfg.srto.backoff_step = 0.5;
  return cfg;
}

TEST(AdaptiveSrto, SpuriousProbeStretchesTimer) {
  Harness h(adaptive_srto_config());
  // SRTT = 90 ms keeps the stretched probe (3*SRTT = 270 ms) below the
  // RTO (SRTT + 200 ms floor = 290 ms).
  for (int i = 0; i < 40; ++i) h.sender->seed_rtt(Duration::millis(90));
  h.sender->app_write(2 * kMss);
  // Probe fires at 2*SRTT = 180 ms and retransmits the head (segment 0).
  h.advance(Duration::millis(195));
  ASSERT_EQ(h.sender->stats().srto_probes, 1u);
  // The probe was unnecessary: DSACK for the probed head. Acking only the
  // retransmitted segment keeps Karn's rule from feeding new RTT samples,
  // so the timings below stay exact.
  h.sender->on_ack(h.seg(1), 1 << 20, {}, net::SackBlock{h.seg(0), h.seg(1)});
  EXPECT_EQ(h.sender->stats().srto_spurious_probes, 1u);
  // Segment 1 is still outstanding; the rearmed probe now waits
  // 2*1.5 = 3*SRTT = 270 ms instead of 180 ms.
  h.advance(Duration::millis(240));
  EXPECT_EQ(h.sender->stats().srto_probes, 1u);  // not yet
  h.advance(Duration::millis(50));
  EXPECT_EQ(h.sender->stats().srto_probes, 2u);  // fired at ~270 ms
}

TEST(AdaptiveSrto, UsefulProbeRelaxesTimer) {
  Harness h(adaptive_srto_config());
  for (int i = 0; i < 40; ++i) h.sender->seed_rtt(Duration::millis(90));
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(195));  // probe 1 (segment 0)
  ASSERT_EQ(h.sender->stats().srto_probes, 1u);
  // Spurious verdict -> level 1. Segment 1 stays outstanding.
  h.sender->on_ack(h.seg(1), 1 << 20, {}, net::SackBlock{h.seg(0), h.seg(1)});
  // Probe 2 fires stretched (3*SRTT = 270 ms) and retransmits segment 1 —
  // this time it repaired a real loss: plain cumulative ACK, no DSACK.
  h.advance(Duration::millis(290));
  ASSERT_EQ(h.sender->stats().srto_probes, 2u);
  h.ack(h.seg(2));  // covers only the retransmitted segment: no RTT sample
  EXPECT_EQ(h.sender->stats().srto_spurious_probes, 1u);
  // Level back to 0: the next probe fires at the base 2*SRTT = 180 ms.
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(195));
  EXPECT_EQ(h.sender->stats().srto_probes, 3u);
}

TEST(AdaptiveSrto, BackoffLevelCapped) {
  SenderConfig cfg = adaptive_srto_config();
  cfg.srto.max_backoff_level = 2;
  Harness h(cfg);
  for (int round = 0; round < 5; ++round) {
    h.sender->app_write(2 * kMss);
    // Wait long enough for any stretched probe (cap: 2*(1+1)=4*SRTT).
    h.advance(Duration::millis(450));
    // Everything acked; DSACK marks the probe spurious each round.
    h.sender->on_ack(h.sender->snd_nxt(), 1 << 20, {},
                     net::SackBlock{h.sender->snd_una() - 2 * kMss,
                                    h.sender->snd_una() - kMss});
  }
  // Probes kept firing every round despite repeated spurious verdicts
  // (the cap keeps the probe below the RTO).
  EXPECT_GE(h.sender->stats().srto_probes, 4u);
}

TEST(AdaptiveSrto, NonAdaptiveIgnoresVerdicts) {
  SenderConfig cfg = adaptive_srto_config();
  cfg.srto.adaptive = false;
  Harness h(cfg);
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(220));
  ASSERT_EQ(h.sender->stats().srto_probes, 1u);
  h.sender->on_ack(h.seg(2), 1 << 20, {}, net::SackBlock{h.seg(0), h.seg(1)});
  EXPECT_EQ(h.sender->stats().srto_spurious_probes, 0u);
  // Timer unchanged: next probe at the base 200 ms.
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(230));
  EXPECT_EQ(h.sender->stats().srto_probes, 2u);
}

}  // namespace
}  // namespace tapo::tcp
