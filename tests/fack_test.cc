// Tests for FACK-style loss detection (Mathis & Mahdavi, the paper's [13]).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tcp/scoreboard.h"
#include "tcp/sender.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;

// Shorthand: tests build sequence positions from small raw integers.
constexpr Seq32 S(std::uint32_t v) { return Seq32{v}; }

Scoreboard make_board(int segments) {
  Scoreboard b;
  for (int i = 0; i < segments; ++i) {
    const auto s = static_cast<std::uint32_t>(1 + i * kMss);
    b.on_transmit(S(s), S(s + kMss), TimePoint::epoch());
  }
  return b;
}

TEST(Fack, HighestSacked) {
  auto b = make_board(5);
  EXPECT_EQ(b.highest_sacked(), b.snd_una());
  b.apply_sack({{S(1 + 2 * kMss), S(1 + 3 * kMss)}}, S(1));
  EXPECT_EQ(b.highest_sacked(), S(1 + 3 * kMss));
  b.apply_sack({{S(1 + 4 * kMss), S(1 + 5 * kMss)}}, S(1));
  EXPECT_EQ(b.highest_sacked(), S(1 + 5 * kMss));
}

TEST(Fack, MarksMultipleHolesAtOnce) {
  // Segments 0..4 unSACKed, only segment 5 SACKed. RFC 6675 (1 SACKed
  // above < dupthres 3) marks nothing; FACK (fack - end >= 3*mss) marks
  // segments 0, 1 and 2.
  auto b = make_board(6);
  b.apply_sack({{S(1 + 5 * kMss), S(1 + 6 * kMss)}}, S(1));
  auto rfc = make_board(6);
  rfc.apply_sack({{S(1 + 5 * kMss), S(1 + 6 * kMss)}}, S(1));

  EXPECT_EQ(rfc.mark_lost_by_sack(3), 0u);
  EXPECT_EQ(b.mark_lost_by_fack(3, kMss), 3u);
  EXPECT_TRUE(b.find(S(1))->lost);
  EXPECT_TRUE(b.find(S(1 + 2 * kMss))->lost);  // exactly 3*mss below fack
  EXPECT_FALSE(b.find(S(1 + 3 * kMss))->lost);  // within the margin
  EXPECT_FALSE(b.find(S(1 + 5 * kMss))->lost);  // the SACKed segment itself
}

TEST(Fack, NothingMarkedWithoutSacks) {
  auto b = make_board(6);
  EXPECT_EQ(b.mark_lost_by_fack(3, kMss), 0u);
}

TEST(Fack, Idempotent) {
  auto b = make_board(6);
  b.apply_sack({{S(1 + 5 * kMss), S(1 + 6 * kMss)}}, S(1));
  EXPECT_EQ(b.mark_lost_by_fack(3, kMss), 3u);
  EXPECT_EQ(b.mark_lost_by_fack(3, kMss), 0u);
}

TEST(Fack, SenderRecoversMultiLossFaster) {
  // Two widely separated losses in one window: a FACK sender enters
  // recovery on the very first SACK that lands far ahead.
  auto run = [](bool fack) {
    SenderConfig cfg;
    cfg.mss = kMss;
    cfg.init_cwnd = 10;
    cfg.cc = CcAlgo::kReno;
    cfg.fack = fack;
    sim::Simulator sim;
    std::vector<TcpSender::SegmentOut> sent;
    TcpSender snd(sim, cfg,
                  [&](const TcpSender::SegmentOut& s) { sent.push_back(s); });
    snd.start(S(1));
    for (int i = 0; i < 20; ++i) snd.seed_rtt(Duration::millis(100));
    snd.app_write(10 * kMss);
    sim.run_until(sim.now() + Duration::millis(10));
    // Segments 0..3 lost; the client SACKs segment 8 first (big jump).
    snd.on_ack(S(1), 1 << 20, {{S(1 + 8 * kMss), S(1 + 9 * kMss)}}, std::nullopt);
    return snd.state();
  };
  EXPECT_EQ(run(true), CaState::kRecovery);   // FACK: 8*mss gap => lost
  EXPECT_NE(run(false), CaState::kRecovery);  // RFC 6675: one dupack only
}

}  // namespace
}  // namespace tapo::tcp
