// Zero-copy data-path tests: the view-based demux+analysis pipeline must be
// bit-identical to the copying path on randomized simulated workloads, view
// lifetimes must follow the sort-then-demux rule, and the pcap reader must
// keep its arena consistent across rejected/truncated frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include "pcap/pcap.h"
#include "tapo/analyzer.h"
#include "util/rng.h"
#include "workload/experiment.h"
#include "workload/profiles.h"

namespace tapo::analysis {
namespace {

// ---------------------------------------------------------------------------
// Deep FlowAnalysis equality. EXPECT_EQ on doubles is deliberate: both paths
// must execute the identical instruction stream, so results are bit-equal,
// not merely close.
// ---------------------------------------------------------------------------

void expect_same_stall(const StallRecord& a, const StallRecord& b) {
  EXPECT_EQ(a.start.us(), b.start.us());
  EXPECT_EQ(a.end.us(), b.end.us());
  EXPECT_EQ(a.duration.us(), b.duration.us());
  EXPECT_EQ(a.cause, b.cause);
  EXPECT_EQ(a.retrans_cause, b.retrans_cause);
  EXPECT_EQ(a.f_double, b.f_double);
  EXPECT_EQ(a.state_at_stall, b.state_at_stall);
  EXPECT_EQ(a.in_flight, b.in_flight);
  EXPECT_EQ(a.rel_position, b.rel_position);
  EXPECT_EQ(a.cur_pkt_index, b.cur_pkt_index);
}

void expect_same_analysis(const FlowAnalysis& a, const FlowAnalysis& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.transmission_time.us(), b.transmission_time.us());
  EXPECT_EQ(a.unique_bytes, b.unique_bytes);
  EXPECT_EQ(a.data_segments, b.data_segments);
  EXPECT_EQ(a.retrans_segments, b.retrans_segments);
  EXPECT_EQ(a.avg_speed_Bps, b.avg_speed_Bps);
  EXPECT_EQ(a.rtt_samples_us, b.rtt_samples_us);
  EXPECT_EQ(a.rto_at_timeout_us, b.rto_at_timeout_us);
  EXPECT_EQ(a.avg_rtt_us, b.avg_rtt_us);
  EXPECT_EQ(a.avg_rto_us, b.avg_rto_us);
  EXPECT_EQ(a.avg_rto_on_ack_us, b.avg_rto_on_ack_us);
  EXPECT_EQ(a.stalled_time.us(), b.stalled_time.us());
  EXPECT_EQ(a.stall_ratio, b.stall_ratio);
  EXPECT_EQ(a.init_rwnd_bytes, b.init_rwnd_bytes);
  EXPECT_EQ(a.init_rwnd_mss, b.init_rwnd_mss);
  EXPECT_EQ(a.had_zero_rwnd, b.had_zero_rwnd);
  EXPECT_EQ(a.inflight_on_ack, b.inflight_on_ack);
  EXPECT_EQ(a.timeout_retrans, b.timeout_retrans);
  EXPECT_EQ(a.fast_retrans, b.fast_retrans);
  EXPECT_EQ(a.spurious_retrans, b.spurious_retrans);
  ASSERT_EQ(a.stalls.size(), b.stalls.size());
  for (std::size_t i = 0; i < a.stalls.size(); ++i) {
    expect_same_stall(a.stalls[i], b.stalls[i]);
  }
}

/// Runs both pipelines over `trace` and asserts flow-by-flow equality.
void expect_view_path_matches_copy_path(const net::PacketTrace& trace) {
  const Analyzer analyzer;
  const std::vector<Flow> flows = demux_flows(trace);
  const FlowViewSet views = demux_flow_views(trace);
  ASSERT_EQ(flows.size(), views.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    ASSERT_EQ(flows[i].packets.size(), views[i].size());
    EXPECT_EQ(flows[i].server_to_client, views[i].server_to_client);
    expect_same_analysis(analyzer.analyze_flow(flows[i]),
                         analyzer.analyze_flow(views[i]));
  }
  // And through the Analyzer::analyze entry point (view path by default).
  const AnalysisResult whole = analyzer.analyze(trace);
  ASSERT_EQ(whole.flows.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    expect_same_analysis(analyzer.analyze_flow(flows[i]), whole.flows[i]);
  }
}

/// Simulates `n_flows` flows of `profile` and merges their server-NIC
/// captures into one arena.
net::PacketTrace merged_trace(const workload::ServiceProfile& profile,
                              std::uint64_t seed, std::uint64_t n_flows) {
  Rng master(seed);
  net::PacketTrace merged;
  for (std::uint64_t f = 0; f < n_flows; ++f) {
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(profile, flow_rng, f);
    auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    if (!outcome.trace.has_value()) {
      ADD_FAILURE() << "flow " << f << " produced no capture";
      continue;
    }
    for (const auto& p : outcome.trace->packets()) merged.add(p);
  }
  return merged;
}

net::PacketTrace shuffled(const net::PacketTrace& trace, std::uint64_t seed) {
  std::vector<std::uint32_t> perm(trace.size());
  for (std::uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
  std::shuffle(perm.begin(), perm.end(), rng);
  net::PacketTrace out;
  out.reserve(trace.size());
  for (std::uint32_t i : perm) out.add(trace[i]);
  return out;
}

struct ProfileCase {
  const char* name;
  workload::ServiceProfile profile;
};

std::vector<ProfileCase> all_profiles() {
  return {{"cloud_storage", workload::cloud_storage_profile()},
          {"software_download", workload::software_download_profile()},
          {"web_search", workload::web_search_profile()}};
}

TEST(ZeroCopyProperty, ViewAnalysisBitIdenticalToCopyAnalysis) {
  for (const auto& [name, profile] : all_profiles()) {
    SCOPED_TRACE(name);
    net::PacketTrace trace = merged_trace(profile, /*seed=*/1234, 6);
    ASSERT_GT(trace.size(), 0u);
    trace.sort_by_time();  // interleave the flows chronologically
    expect_view_path_matches_copy_path(trace);
  }
}

TEST(ZeroCopyProperty, HoldsOnShuffledCaptureOrder) {
  // Demux preserves per-flow capture order whatever the global order is;
  // both paths must agree on arbitrarily permuted traces too (their output
  // just reflects the garbled timestamps identically).
  for (const auto& [name, profile] : all_profiles()) {
    SCOPED_TRACE(name);
    const net::PacketTrace base = merged_trace(profile, /*seed=*/77, 4);
    ASSERT_GT(base.size(), 0u);
    const net::PacketTrace garbled = shuffled(base, /*seed=*/5);
    expect_view_path_matches_copy_path(garbled);
  }
}

TEST(ZeroCopyProperty, ViewsSurviveSortCalledBeforeDemux) {
  net::PacketTrace trace =
      merged_trace(workload::cloud_storage_profile(), /*seed=*/99, 4);
  // Shuffle, then follow the documented lifetime rule: sort FIRST, demux
  // after. The views handed out then index the post-sort arena and must
  // stay valid for the whole analysis.
  net::PacketTrace work = shuffled(trace, /*seed=*/3);
  work.sort_by_time();
  const FlowViewSet views = demux_flow_views(work);
  ASSERT_GT(views.size(), 0u);
  const std::span<const net::CapturedPacket> arena = work.packets();
  for (const FlowView& v : views) {
    ASSERT_EQ(v.trace, &work);
    TimePoint prev = TimePoint::epoch();
    for (std::size_t i = 0; i < v.size(); ++i) {
      const net::CapturedPacket& cp = v.packet(i);
      // The reference really points into the trace arena...
      EXPECT_GE(&cp, arena.data());
      EXPECT_LT(&cp, arena.data() + arena.size());
      // ...and per-flow packets are time-ordered after the pre-demux sort.
      EXPECT_GE(cp.timestamp, prev);
      prev = cp.timestamp;
    }
  }
  // The sorted trace analyzes identically via both paths.
  expect_view_path_matches_copy_path(work);
}

TEST(ZeroCopy, FlowViewSetSurvivesMove) {
  net::PacketTrace trace =
      merged_trace(workload::web_search_profile(), /*seed=*/11, 2);
  FlowViewSet views = demux_flow_views(trace);
  ASSERT_GT(views.size(), 0u);
  const std::size_t n = views.size();
  const net::CapturedPacket& first = views[0].packet(0);
  const FlowViewSet moved = std::move(views);
  ASSERT_EQ(moved.size(), n);
  // Spans chase the index pool's heap buffer across the move.
  EXPECT_EQ(&moved[0].packet(0), &first);
}

TEST(ZeroCopy, PacketRecordsStayCompact) {
  // The static_asserts enforce these at compile time; restating the sizes
  // here keeps the budget visible in test output when they change.
  EXPECT_LE(sizeof(FlowPacket), 32u);
  EXPECT_TRUE(std::is_trivially_copyable_v<FlowPacket>);
  EXPECT_TRUE(std::is_trivially_copyable_v<net::CapturedPacket>);
  EXPECT_TRUE(std::is_trivially_copyable_v<net::TcpHeader>);
}

TEST(ZeroCopy, TraceBuilderRollbackDiscardsSlot) {
  net::PacketTrace trace;
  net::TraceBuilder builder(trace);
  net::CapturedPacket& a = builder.begin_packet();
  a.payload_len = 111;
  builder.begin_packet().payload_len = 222;
  builder.rollback_last();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].payload_len, 111u);
  builder.begin_packet().payload_len = 333;
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].payload_len, 333u);
}

// ---------------------------------------------------------------------------
// pcap reader: truncated-mid-packet regression. The scratch-buffer read
// loop must keep every complete record and drop the partial tail without
// corrupting the arena.
// ---------------------------------------------------------------------------

TEST(ZeroCopy, PcapTruncatedMidPacketKeepsCompleteRecords) {
  net::PacketTrace trace =
      merged_trace(workload::web_search_profile(), /*seed=*/42, 1);
  ASSERT_GE(trace.size(), 3u);

  std::stringstream full;
  pcap::write_stream(full, trace);
  const std::string bytes = full.str();

  // Walk the record framing to find where the final record's body starts,
  // then cut in the middle of that body.
  constexpr std::size_t kGlobalHeader = 24;
  constexpr std::size_t kRecordHeader = 16;
  std::size_t off = kGlobalHeader;
  std::size_t last_body_start = 0;
  std::size_t last_caplen = 0;
  while (off + kRecordHeader <= bytes.size()) {
    const auto u8 = [&](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<std::uint8_t>(bytes[off + i]));
    };
    const std::uint32_t caplen =
        u8(8) | (u8(9) << 8) | (u8(10) << 16) | (u8(11) << 24);
    last_body_start = off + kRecordHeader;
    last_caplen = caplen;
    off = last_body_start + caplen;
  }
  ASSERT_EQ(off, bytes.size()) << "framing walk must land on EOF";
  ASSERT_GT(last_caplen, 1u);

  const std::string cut = bytes.substr(0, last_body_start + last_caplen / 2);
  std::stringstream in(cut);
  pcap::ReadStats stats;
  const net::PacketTrace back = pcap::read_stream(in, &stats);

  ASSERT_EQ(back.size(), trace.size() - 1);
  EXPECT_EQ(stats.tcp_packets, trace.size() - 1);
  EXPECT_EQ(stats.records, trace.size());  // header of the cut record read
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].timestamp.us(), trace[i].timestamp.us());
    EXPECT_EQ(back[i].key, trace[i].key);
    EXPECT_EQ(back[i].tcp.seq, trace[i].tcp.seq);
    EXPECT_EQ(back[i].payload_len, trace[i].payload_len);
  }
  // The truncated capture still demuxes and analyzes cleanly via views.
  const Analyzer analyzer;
  const auto result = analyzer.analyze(back);
  EXPECT_GE(result.flows.size(), 1u);
}

}  // namespace
}  // namespace tapo::analysis
