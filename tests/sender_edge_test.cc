// Edge-case sender tests: Early Retransmit (RFC 5827), reordering and
// dupthres adaptation, persist/zero-window interplay, and recovery corner
// cases not covered by the main sender tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tcp/sender.h"

namespace tapo::tcp {
namespace {

constexpr std::uint32_t kMss = 1000;
constexpr net::Seq32 kIsn{1};

struct Harness {
  sim::Simulator sim;
  std::vector<TcpSender::SegmentOut> sent;
  std::unique_ptr<TcpSender> sender;

  explicit Harness(SenderConfig cfg) {
    sender = std::make_unique<TcpSender>(
        sim, cfg, [this](const TcpSender::SegmentOut& s) { sent.push_back(s); });
    sender->start(kIsn);
    for (int i = 0; i < 20; ++i) sender->seed_rtt(Duration::millis(100));
  }
  void ack(net::Seq32 a, std::vector<net::SackBlock> sacks = {},
           std::uint32_t rwnd = 1 << 20) {
    sender->on_ack(a, rwnd, sacks, std::nullopt);
  }
  void advance(Duration d) { sim.run_until(sim.now() + d); }
  net::Seq32 seg(int i) const {
    return kIsn + static_cast<std::uint32_t>(i) * kMss;
  }
};

SenderConfig base_config() {
  SenderConfig cfg;
  cfg.mss = kMss;
  cfg.init_cwnd = 3;
  cfg.cc = CcAlgo::kReno;
  return cfg;
}

// ---- Early Retransmit (RFC 5827) ----

TEST(EarlyRetransmit, TriggersBelowDupthresWithNoNewData) {
  SenderConfig cfg = base_config();
  cfg.early_retransmit = true;
  Harness h(cfg);
  h.sender->app_write(3 * kMss);  // exactly the initial window: no new data
  h.advance(Duration::millis(10));
  // Segment 0 lost; only 2 dupacks possible (segments 1 and 2).
  h.ack(kIsn, {{h.seg(1), h.seg(2)}});
  h.ack(kIsn, {{h.seg(1), h.seg(3)}});
  // ER threshold = packets_out - 1 = 2: fast retransmit fires now.
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
  ASSERT_FALSE(h.sent.empty());
  EXPECT_TRUE(h.sent.back().retransmission);
  EXPECT_EQ(h.sent.back().seq, kIsn);
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
}

TEST(EarlyRetransmit, DisabledWaitsForRto) {
  SenderConfig cfg = base_config();
  cfg.early_retransmit = false;
  Harness h(cfg);
  h.sender->app_write(3 * kMss);
  h.advance(Duration::millis(10));
  h.ack(kIsn, {{h.seg(1), h.seg(2)}});
  h.ack(kIsn, {{h.seg(1), h.seg(3)}});
  EXPECT_NE(h.sender->state(), CaState::kRecovery);
  EXPECT_EQ(h.sender->stats().retransmissions, 0u);
  // Only the RTO recovers it.
  h.advance(Duration::millis(400));
  EXPECT_EQ(h.sender->stats().rto_fires, 1u);
}

TEST(EarlyRetransmit, InactiveWhenNewDataPending) {
  SenderConfig cfg = base_config();
  cfg.early_retransmit = true;
  cfg.limited_transmit = false;  // keep the window composition fixed
  Harness h(cfg);
  h.sender->app_write(10 * kMss);  // plenty of new data
  h.advance(Duration::millis(10));
  h.ack(kIsn, {{h.seg(1), h.seg(2)}});
  // With new data pending, RFC 5827 does not lower the threshold.
  EXPECT_NE(h.sender->state(), CaState::kRecovery);
}

// ---- Reordering / dupthres adaptation ----

TEST(Reordering, DupthresStopsRepeatedSpuriousRetransmits) {
  SenderConfig cfg = base_config();
  cfg.adapt_dupthres = true;
  Harness h(cfg);
  h.sender->app_write(30 * kMss);
  h.advance(Duration::millis(10));
  // Reordering episode: 3 sacked dupacks -> spurious fast retransmit.
  h.ack(kIsn, {{h.seg(1), h.seg(2)}});
  h.ack(kIsn, {{h.seg(1), h.seg(3)}});
  h.ack(kIsn, {{h.seg(1), h.seg(4)}});
  ASSERT_EQ(h.sender->state(), CaState::kRecovery);
  const auto first_retrans = h.sender->stats().retransmissions;
  ASSERT_GE(first_retrans, 1u);
  // The "lost" original was merely reordered: a full ACK ends the episode
  // and its DSACK raises dupthres.
  h.sender->on_ack(h.sender->snd_nxt(), 1 << 20, {},
                   net::SackBlock{kIsn, h.seg(1)});
  EXPECT_EQ(h.sender->dupthres(), 4u);
  ASSERT_EQ(h.sender->state(), CaState::kOpen);
  // Regrow the window with clean acks, then replay the same 3-dupack
  // reordering pattern: it no longer triggers a fast retransmit.
  while (h.sender->packets_out() <= 5) {
    h.advance(Duration::millis(100));
    h.ack(h.sender->snd_una() + 2 * kMss);
  }
  const net::Seq32 una = h.sender->snd_una();
  const auto retrans_before = h.sender->stats().retransmissions;
  ASSERT_GT(h.sender->packets_out(), 4u);
  h.ack(una, {{una + kMss, una + 2 * kMss}});
  h.ack(una, {{una + kMss, una + 3 * kMss}});
  h.ack(una, {{una + kMss, una + 4 * kMss}});
  EXPECT_EQ(h.sender->stats().retransmissions, retrans_before);
  EXPECT_EQ(h.sender->state(), CaState::kDisorder);
  // A fourth dupack crosses the raised threshold.
  h.ack(una, {{una + kMss, una + 5 * kMss}});
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
}

TEST(Reordering, DupthresCapped) {
  SenderConfig cfg = base_config();
  cfg.adapt_dupthres = true;
  cfg.max_dupthres = 5;
  Harness h(cfg);
  h.sender->app_write(3 * kMss);
  for (int i = 0; i < 20; ++i) {
    h.sender->on_ack(kIsn, 1 << 20, {}, net::SackBlock{kIsn, h.seg(1)});
  }
  EXPECT_EQ(h.sender->dupthres(), 5u);
}

// ---- Persist / zero-window corner cases ----

TEST(Persist, IntervalDoublesAcrossProbes) {
  Harness h(base_config());
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg(3), {}, 0);  // zero window after everything acked
  const auto count_probes = [&] { return h.sender->stats().persist_probes; };
  // First probe after ~RTO (300 ms), second ~600 ms later, third ~1.2 s.
  h.advance(Duration::millis(350));
  EXPECT_EQ(count_probes(), 1u);
  h.advance(Duration::millis(400));
  EXPECT_EQ(count_probes(), 1u);
  h.advance(Duration::millis(300));
  EXPECT_EQ(count_probes(), 2u);
  h.advance(Duration::millis(1300));
  EXPECT_EQ(count_probes(), 3u);
}

TEST(Persist, WindowReopeningResetsInterval) {
  Harness h(base_config());
  h.sender->app_write(20 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg(3), {}, 0);
  h.advance(Duration::seconds(1.5));
  const auto probes_first = h.sender->stats().persist_probes;
  EXPECT_GE(probes_first, 2u);
  // Window reopens; transfer resumes; then closes again.
  h.ack(h.sender->snd_nxt(), {}, 4 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.sender->snd_nxt(), {}, 0);
  // The persist interval restarts at ~RTO, not at the backed-off value.
  h.advance(Duration::millis(400));
  EXPECT_GT(h.sender->stats().persist_probes, probes_first);
}

TEST(Persist, ZeroWindowWithOutstandingDataUsesRto) {
  // rwnd drops to zero while data is still in flight: the RTO (not the
  // persist timer) governs, since the in-flight data may be acked.
  Harness h(base_config());
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg(1), {}, 0);  // 2 segments still in flight, window now 0
  EXPECT_GT(h.sender->packets_out(), 0u);
  h.advance(Duration::millis(500));
  EXPECT_GE(h.sender->stats().rto_fires, 1u);
}

// ---- Recovery corner cases ----

TEST(Recovery, PartialAckRetransmitsNextHole) {
  SenderConfig cfg = base_config();
  Harness h(cfg);
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg(2));
  // Segments 2 AND 3 lost; SACKs for 4..6 mark both lost (dupthres 3).
  h.ack(h.seg(2), {{h.seg(4), h.seg(5)}});
  h.ack(h.seg(2), {{h.seg(4), h.seg(6)}});
  h.ack(h.seg(2), {{h.seg(4), h.seg(7)}});
  ASSERT_EQ(h.sender->state(), CaState::kRecovery);
  // Both holes were marked lost and retransmitted by the SACK logic.
  int retrans_2 = 0, retrans_3 = 0;
  for (const auto& s : h.sent) {
    if (s.retransmission && s.seq == h.seg(2)) ++retrans_2;
    if (s.retransmission && s.seq == h.seg(3)) ++retrans_3;
  }
  EXPECT_EQ(retrans_2, 1);
  EXPECT_EQ(retrans_3, 1);
  // Partial ack (covers 2, not 3): recovery continues.
  h.ack(h.seg(3), {{h.seg(4), h.seg(7)}});
  EXPECT_EQ(h.sender->state(), CaState::kRecovery);
  // Full ack ends it.
  h.ack(h.sender->snd_nxt());
  EXPECT_EQ(h.sender->state(), CaState::kOpen);
}

TEST(Recovery, RtoDuringRecoveryMovesToLoss) {
  Harness h(base_config());
  h.sender->app_write(10 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg(2));
  h.ack(h.seg(2), {{h.seg(3), h.seg(4)}});
  h.ack(h.seg(2), {{h.seg(3), h.seg(5)}});
  h.ack(h.seg(2), {{h.seg(3), h.seg(6)}});
  ASSERT_EQ(h.sender->state(), CaState::kRecovery);
  // The retransmission is lost too; silence until the RTO.
  h.advance(Duration::seconds(1.0));
  EXPECT_EQ(h.sender->state(), CaState::kLoss);
  EXPECT_GE(h.sender->stats().rto_fires, 1u);
  EXPECT_EQ(h.sender->cwnd(), 1u);
}

TEST(Recovery, CwndNeverZero) {
  Harness h(base_config());
  h.sender->app_write(50 * kMss);
  for (int i = 0; i < 30; ++i) {
    h.advance(Duration::millis(150));
    h.ack(kIsn + static_cast<std::uint32_t>(i) * 500);  // odd partial acks
    ASSERT_GE(h.sender->cwnd(), 1u);
  }
}

TEST(Sender, AppWriteAfterIdleRestartsTransmission) {
  Harness h(base_config());
  h.sender->app_write(2 * kMss);
  h.advance(Duration::millis(10));
  h.ack(h.seg(2));
  EXPECT_EQ(h.sender->in_flight(), 0u);
  h.advance(Duration::seconds(2.0));  // idle; no timers should fire
  EXPECT_EQ(h.sender->stats().rto_fires, 0u);
  h.sender->app_write(kMss);
  EXPECT_EQ(h.sent.size(), 3u);
  EXPECT_FALSE(h.sent.back().retransmission);
}

}  // namespace
}  // namespace tapo::tcp
