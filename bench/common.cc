#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "util/env.h"
#include "util/strings.h"

namespace tapo::bench {

std::size_t flows_per_service(std::size_t dflt) {
  // Memoized so a malformed value warns once per binary, not per call.
  static const std::size_t value =
      util::env_positive_size("TAPO_BENCH_FLOWS", dflt);
  return value;
}

std::size_t bench_threads(std::size_t dflt) {
  static const std::size_t value = [dflt] {
    // 0 is a valid request ("all cores"), so handle it before the
    // positive-size path.
    if (const char* raw = std::getenv("TAPO_BENCH_THREADS")) {
      if (std::string(raw) == "0") return std::size_t{0};
    }
    return util::env_positive_size("TAPO_BENCH_THREADS", dflt);
  }();
  return value;
}

std::vector<ServiceRun> run_all_services(std::size_t flows, std::uint64_t seed,
                                         bool analyze) {
  std::vector<ServiceRun> runs;
  for (auto svc : {workload::Service::kCloudStorage,
                   workload::Service::kSoftwareDownload,
                   workload::Service::kWebSearch}) {
    auto cfg = workload::ExperimentConfig{}
                   .with_profile(workload::profile_for(svc))
                   .with_flows(flows)
                   .with_seed(seed)
                   .with_analysis(analyze);
    workload::RunOptions options;
    options.threads = bench_threads();
    workload::ParallelRunner runner(cfg, std::move(options));
    workload::CollectingSink sink;
    const auto perf = runner.run(sink);
    print_perf(workload::to_string(svc), perf);
    runs.push_back({svc, sink.take(), perf});
  }
  return runs;
}

void print_perf(const std::string& label, const workload::RunStats& stats) {
  std::printf(
      "[perf] %-17s %6zu flows  %7.2fs wall  %8.1f flows/s  "
      "threads=%zu util=%.0f%%  (worker s: gen %.2f | sim %.2f | analyze "
      "%.2f)\n",
      label.c_str(), stats.flows, stats.wall_seconds, stats.flows_per_second,
      stats.threads, stats.worker_utilization * 100.0, stats.generate_seconds,
      stats.simulate_seconds, stats.analyze_seconds);
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  std::size_t flows) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s  |  flows/service: %zu  |  seed: %llu  |  "
              "threads: %zu\n",
              paper_ref.c_str(), flows,
              static_cast<unsigned long long>(kBenchSeed), bench_threads());
  std::printf("(absolute numbers differ from the paper's testbed; compare "
              "shapes/orderings)\n");
  std::printf("==================================================================\n");
}

void print_cdf(const std::string& name, const stats::Cdf& cdf,
               const std::string& unit, const std::vector<double>& quantiles) {
  if (cdf.empty()) {
    std::printf("%-28s (no samples)\n", name.c_str());
    return;
  }
  std::printf("%-28s n=%-8zu", name.c_str(), cdf.count());
  for (double q : quantiles) {
    std::printf(" p%-2.0f=%-9.3g", q * 100, cdf.percentile(q));
  }
  std::printf("%s\n", unit.c_str());
}

std::string vs_paper(double measured, double paper, const char* fmt) {
  return str_format(fmt, measured) + " (paper " + str_format(fmt, paper) + ")";
}

}  // namespace tapo::bench
