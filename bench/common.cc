#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "telemetry/telemetry.h"
#include "util/env.h"
#include "util/strings.h"

namespace tapo::bench {

namespace {

/// Artifact directory chosen by init_telemetry; empty = telemetry off.
std::string g_telemetry_dir;

/// One-shot note when multi-threaded runs cannot show a speedup here.
void maybe_warn_few_cpus(std::size_t threads_requested) {
  static bool warned = false;
  if (warned) return;
  const unsigned online = std::thread::hardware_concurrency();
  // hardware_concurrency() == 0 means "unknown" (the standard allows it);
  // treat it like a single-CPU box since a speedup is equally unverifiable.
  if (online > 1) return;
  if (threads_requested == 1) return;  // serial run: nothing to measure
  warned = true;
  std::printf(
      "[note] %u online CPU%s; multi-thread speedup not measurable on this "
      "machine (results are still bit-identical to a serial run)\n",
      online, online == 1 ? "" : "s");
}

}  // namespace

std::size_t flows_per_service(std::size_t dflt) {
  // Memoized so a malformed value warns once per binary, not per call.
  static const std::size_t value =
      util::env_positive_size("TAPO_BENCH_FLOWS", dflt);
  return value;
}

std::size_t bench_threads(std::size_t dflt) {
  // 0 is a valid request ("all cores"), so use the zero-permitting parser.
  static const std::size_t value = util::env_size("TAPO_BENCH_THREADS", dflt);
  return value;
}

namespace {
/// --shards=N override recorded by init_shards; 0 = not given.
std::size_t g_shards_flag = 0;
}  // namespace

void init_shards(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kFlag = "--shards=";
    if (arg.rfind(kFlag, 0) != 0) continue;
    const std::string text = arg.substr(std::string(kFlag).size());
    if (const auto parsed = util::parse_positive_size(text)) {
      g_shards_flag = *parsed;
    } else {
      std::fprintf(stderr,
                   "[bench] ignoring malformed --shards=%s (want a positive "
                   "integer)\n",
                   text.c_str());
    }
  }
}

std::size_t bench_shards(std::size_t dflt) {
  if (g_shards_flag != 0) return g_shards_flag;  // flag wins over the env var
  static const std::size_t value =
      util::env_positive_size("TAPO_BENCH_SHARDS", dflt);
  return value;
}

std::vector<ServiceRun> run_all_services(std::size_t flows, std::uint64_t seed,
                                         bool analyze) {
  maybe_warn_few_cpus(bench_threads());
  std::vector<ServiceRun> runs;
  for (auto svc : {workload::Service::kCloudStorage,
                   workload::Service::kSoftwareDownload,
                   workload::Service::kWebSearch}) {
    auto cfg = workload::ExperimentConfig{}
                   .with_profile(workload::profile_for(svc))
                   .with_flows(flows)
                   .with_seed(seed)
                   .with_analysis(analyze);
    workload::RunOptions options;
    options.threads = bench_threads();
    workload::ParallelRunner runner(cfg, std::move(options));
    workload::CollectingSink sink;
    const auto perf = runner.run(sink);
    print_perf(workload::to_string(svc), perf);
    runs.push_back({svc, sink.take(), perf});
  }
  return runs;
}

void init_telemetry(int argc, char** argv) {
  const char* dir = std::getenv("TAPO_TELEMETRY_OUT");
  std::string from_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kFlag = "--telemetry-out=";
    if (arg.rfind(kFlag, 0) == 0) from_flag = arg.substr(std::string(kFlag).size());
  }
  if (!from_flag.empty()) {
    g_telemetry_dir = from_flag;  // flag wins over the env var
  } else if (dir != nullptr && dir[0] != '\0') {
    g_telemetry_dir = dir;
  } else {
    return;  // telemetry stays disabled; zero cost beyond a relaxed load
  }
  telemetry::enable_all();
  auto& tracer = telemetry::Tracer::instance();
  tracer.set_sample_every(util::env_positive_size("TAPO_TELEMETRY_SAMPLE", 1));
  if (const char* pkts = std::getenv("TAPO_TELEMETRY_PACKETS")) {
    if (std::string(pkts) == "1") {
      tracer.set_categories(telemetry::kPackets | telemetry::kControl |
                            telemetry::kLifecycle);
    }
  }
  std::printf("[telemetry] enabled; artifacts -> %s\n",
              g_telemetry_dir.c_str());
}

void write_telemetry_artifacts() {
  if (g_telemetry_dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(g_telemetry_dir, ec);
  if (ec) {
    std::fprintf(stderr, "[telemetry] cannot create %s: %s\n",
                 g_telemetry_dir.c_str(), ec.message().c_str());
    return;
  }
  const auto path = [&](const char* file) {
    return (fs::path(g_telemetry_dir) / file).string();
  };
  const auto& tracer = telemetry::Tracer::instance();
  const auto& registry = telemetry::Registry::instance();
  {
    std::ofstream os(path("trace.json"));
    tracer.export_chrome_trace(os);
  }
  {
    std::ofstream os(path("trace.jsonl"));
    tracer.export_jsonl(os);
  }
  {
    std::ofstream os(path("metrics.prom"));
    registry.export_prometheus(os);
  }
  {
    std::ofstream os(path("metrics.json"));
    registry.export_json(os);
  }
  std::printf("[telemetry] wrote trace.json trace.jsonl metrics.prom "
              "metrics.json to %s (%llu events buffered, %llu dropped)\n",
              g_telemetry_dir.c_str(),
              static_cast<unsigned long long>(tracer.collect().size()),
              static_cast<unsigned long long>(tracer.dropped()));
}

void print_perf(const std::string& label, const workload::RunStats& stats) {
  std::printf(
      "[perf] %-17s %6zu flows  %7.2fs wall  %8.1f flows/s  "
      "threads=%zu util=%.0f%%  (worker s: gen %.2f | sim %.2f | analyze "
      "%.2f)\n",
      label.c_str(), stats.flows, stats.wall_seconds, stats.flows_per_second,
      stats.threads, stats.worker_utilization * 100.0, stats.generate_seconds,
      stats.simulate_seconds, stats.analyze_seconds);
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  std::size_t flows) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s  |  flows/service: %zu  |  seed: %llu  |  "
              "threads: %zu\n",
              paper_ref.c_str(), flows,
              static_cast<unsigned long long>(kBenchSeed), bench_threads());
  std::printf("(absolute numbers differ from the paper's testbed; compare "
              "shapes/orderings)\n");
  std::printf("==================================================================\n");
}

void print_cdf(const std::string& name, const stats::Cdf& cdf,
               const std::string& unit, const std::vector<double>& quantiles) {
  if (cdf.empty()) {
    std::printf("%-28s (no samples)\n", name.c_str());
    return;
  }
  std::printf("%-28s n=%-8zu", name.c_str(), cdf.count());
  for (double q : quantiles) {
    std::printf(" p%-2.0f=%-9.3g", q * 100, cdf.percentile(q));
  }
  std::printf("%s\n", unit.c_str());
}

std::string vs_paper(double measured, double paper, const char* fmt) {
  return str_format(fmt, measured) + " (paper " + str_format(fmt, paper) + ")";
}

}  // namespace tapo::bench
