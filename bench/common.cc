#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace tapo::bench {

std::size_t flows_per_service(std::size_t dflt) {
  if (const char* env = std::getenv("TAPO_BENCH_FLOWS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return dflt;
}

std::vector<ServiceRun> run_all_services(std::size_t flows, std::uint64_t seed,
                                         bool analyze) {
  std::vector<ServiceRun> runs;
  for (auto svc : {workload::Service::kCloudStorage,
                   workload::Service::kSoftwareDownload,
                   workload::Service::kWebSearch}) {
    workload::ExperimentConfig cfg;
    cfg.profile = workload::profile_for(svc);
    cfg.flows = flows;
    cfg.seed = seed;
    cfg.analyze = analyze;
    runs.push_back({svc, workload::run_experiment(cfg)});
  }
  return runs;
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  std::size_t flows) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s  |  flows/service: %zu  |  seed: %llu\n",
              paper_ref.c_str(), flows,
              static_cast<unsigned long long>(kBenchSeed));
  std::printf("(absolute numbers differ from the paper's testbed; compare "
              "shapes/orderings)\n");
  std::printf("==================================================================\n");
}

void print_cdf(const std::string& name, const stats::Cdf& cdf,
               const std::string& unit, const std::vector<double>& quantiles) {
  if (cdf.empty()) {
    std::printf("%-28s (no samples)\n", name.c_str());
    return;
  }
  std::printf("%-28s n=%-8zu", name.c_str(), cdf.count());
  for (double q : quantiles) {
    std::printf(" p%-2.0f=%-9.3g", q * 100, cdf.percentile(q));
  }
  std::printf("%s\n", unit.c_str());
}

std::string vs_paper(double measured, double paper, const char* fmt) {
  return str_format(fmt, measured) + " (paper " + str_format(fmt, paper) + ")";
}

}  // namespace tapo::bench
