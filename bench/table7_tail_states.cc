// Table 7: tail-retransmission stalls by congestion state (Open vs
// Recovery) at the time of the stall.
//
// Paper: Open 60.1% / 41.3% / 10.0% for cloud / software / web — web-search
// tails mostly happen in Recovery, where TLP cannot help (its Open-state
// requirement), which motivates S-RTO.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Table 7: tail-retransmission stalls by congestion state",
               "Table 7 (paper §4.2)", flows);
  const auto runs = run_all_services(flows);

  constexpr double kPaperOpen[3] = {60.1, 41.3, 10.0};

  stats::Table table;
  table.set_header({"", "cloud s.", "software d.", "web search"});
  std::vector<std::string> open_row{"Open state"}, rec_row{"Recovery state"};
  for (std::size_t s = 0; s < 3; ++s) {
    const auto bd = analysis::make_retrans_breakdown(runs[s].result.analyses);
    const double total = (bd.tail_open_time + bd.tail_recovery_time).sec();
    const double open =
        total > 0 ? bd.tail_open_time.sec() / total * 100 : 0.0;
    open_row.push_back(
        str_format("%.1f%% (paper %.1f%%)", open, kPaperOpen[s]));
    rec_row.push_back(str_format("%.1f%% (paper %.1f%%)",
                                 total > 0 ? 100 - open : 0.0,
                                 100 - kPaperOpen[s]));
  }
  table.add_row(open_row);
  table.add_row(rec_row);
  std::printf("%s", table.render().c_str());
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
