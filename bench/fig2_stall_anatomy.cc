// Figure 2: illustrative example of TCP stalls within a single flow.
//
// A scripted 400 KB cloud-storage-like transfer experiences, in order:
//   1. a zero-receive-window stall (~250 ms) from a pausing reader,
//   2. an RTT-variation (packet delay) stall (~300 ms) from a jitter
//      episode,
//   3. several timeout-retransmission stalls (> 1 s) from forced outages.
// The bench prints the sequence-number progress over time and TAPO's
// classification of every stall — the reproduction of the paper's Fig. 2.
#include <cstdio>
#include <optional>

#include "common.h"
#include "net/ipv4.h"
#include "sim/link.h"
#include "sim/simulator.h"
#include "tapo/analyzer.h"
#include "tapo/report.h"
#include "tcp/connection.h"
#include "util/rng.h"

using namespace tapo;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  std::printf("==================================================================\n");
  std::printf("Figure 2: anatomy of TCP stalls within one flow\n");
  std::printf("reproduces: Fig. 2 (paper §2.2)\n");
  std::printf("==================================================================\n");

  sim::Simulator sim;
  sim::LinkConfig down_cfg;
  down_cfg.prop_delay = Duration::millis(70);
  sim::LinkConfig up_cfg;
  up_cfg.prop_delay = Duration::millis(70);
  sim::Link down(sim, down_cfg, Rng(1));
  sim::Link up(sim, up_cfg, Rng(2));

  tcp::ConnectionConfig cfg;
  cfg.client_to_server = {net::ipv4_from_string("10.0.0.1"),
                          net::ipv4_from_string("192.168.1.1"), 40001, 80};
  // Pausing reader with a modest fixed buffer -> one zero-window stall.
  cfg.receiver.init_rwnd_bytes = 48 * 1024;
  cfg.receiver.max_rwnd_bytes = 48 * 1024;
  cfg.receiver.window_autotune = false;
  cfg.receiver.app_read_Bps = 400'000;
  cfg.receiver.pause_every_bytes = 60 * 1024;
  cfg.receiver.pause_duration = Duration::millis(260);
  tcp::RequestSpec req;
  req.response_bytes = 400 * 1024;
  cfg.requests.push_back(req);

  net::PacketTrace trace;
  tcp::Connection conn(sim, down, up, cfg, &trace);

  // Scripted network events.
  sim.schedule(Duration::seconds(2.0), [&] {
    // RTT spike: jitter episode for ~0.6 s.
    down.set_jitter_mean(Duration::millis(320));
    sim.schedule(Duration::seconds(0.6), [&] {
      down.set_jitter_mean(Duration::zero());
    });
  });
  sim.schedule(Duration::seconds(4.0), [&] {
    down.set_burst(0.0, Duration::millis(1), 1.0);
    down.force_outage(Duration::millis(400));  // kills a whole window
  });
  sim.schedule(Duration::seconds(6.0), [&] {
    down.force_outage(Duration::millis(900));  // and again, deeper
  });

  conn.start();
  sim.run_until(sim.now() + Duration::seconds(120.0));

  // Sequence-number progress (sampled).
  std::printf("\ntime(s)  seq(KB)   [server data transmissions]\n");
  std::optional<net::Seq32> base;
  double last_printed = -1.0;
  for (const auto& p : trace.packets()) {
    if (p.key.src_port != 80 || p.payload_len == 0) continue;
    if (!base) base = p.tcp.seq;
    const double t = p.timestamp.sec();
    if (t - last_printed >= 0.25) {
      std::printf("%7.2f  %7.1f\n", t,
                  static_cast<double>(net::distance(*base, p.tcp.seq)) / 1024.0);
      last_printed = t;
    }
  }

  const double total = (conn.metrics().finished - conn.metrics().syn_sent).sec();
  std::printf("\ntransfer of 400KB took %.1fs (paper's example: 9s with >5s "
              "stalled)\n", total);

  // TAPO classification.
  analysis::Analyzer analyzer;
  const auto result = analyzer.analyze(trace);
  for (const auto& fa : result.flows) {
    std::printf("\n%s", analysis::describe_flow(fa).c_str());
  }
  std::printf("\npaper shape check: one zero-window stall (~250ms), one "
              "packet-delay stall (~300ms),\nand timeout-retransmission "
              "stalls of ~1s+ dominate the flow's lifetime.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
