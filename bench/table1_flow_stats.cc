// Table 1: flow-level statistics of the dataset — flow count, average
// speed, average flow size, packet loss, average RTT, average RTO.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

namespace {

struct PaperRow {
  const char* name;
  double speed_Bps, size_bytes, loss, rtt_ms, rto_ms;
};

constexpr PaperRow kPaper[] = {
    {"cloud stor.", 540e3, 1.7e6, 0.039, 143, 1200},
    {"soft. down.", 413e3, 129e3, 0.041, 147, 1600},
    {"web search", 644e3, 14e3, 0.021, 106, 900},
};

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Table 1: flow-level statistics of the dataset",
               "Table 1 (paper §2.1)", flows);
  const auto runs = run_all_services(flows);

  stats::Table table;
  table.set_header({"service", "#flows", "avg.speed(B/s)", "avg.flow size",
                    "pkt loss", "avg.RTT", "avg.RTO"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto sum = analysis::make_service_summary(runs[i].result.analyses);
    const auto& p = kPaper[i];
    table.add_row({
        p.name,
        str_format("%zu", static_cast<std::size_t>(sum.flows)),
        str_format("%.0fK (paper %.0fK)", sum.avg_speed_Bps / 1e3,
                   p.speed_Bps / 1e3),
        human_bytes(sum.avg_flow_bytes) + " (paper " +
            human_bytes(p.size_bytes) + ")",
        vs_paper(sum.pkt_loss * 100, p.loss * 100) + "%",
        str_format("%.0fms (paper %.0fms)", sum.avg_rtt_us / 1e3, p.rtt_ms),
        str_format("%.1fs (paper %.1fs)", sum.avg_rto_us / 1e6,
                   p.rto_ms / 1e3),
    });
  }
  std::printf("%s", table.render().c_str());
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
