// Table 3: percentage of stalls, by volume (#) and time (T), for each of
// the six cause categories across the three services.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;
using analysis::StallCause;

namespace {

struct PaperCell {
  double vol, time;
};

// Rows: data unavailable, resource constraint, client idle, zero wnd,
// pkt delay, retransmission. Columns: cloud, soft, web.
constexpr PaperCell kPaper[6][3] = {
    {{8.5, 22.8}, {7.1, 13.6}, {65.9, 24.1}},
    {{9.3, 3.1}, {1.9, 13.2}, {0.9, 0.4}},
    {{1.1, 15.7}, {1.6, 5.6}, {0.6, 1.3}},
    {{7.4, 7.0}, {26.7, 21.7}, {1.6, 2.2}},
    {{38.6, 17.4}, {48.0, 14.9}, {15.2, 8.6}},
    {{35.0, 36.3}, {15.2, 31.2}, {15.8, 63.4}},
};

constexpr StallCause kRows[6] = {
    StallCause::kDataUnavailable, StallCause::kResourceConstraint,
    StallCause::kClientIdle,      StallCause::kZeroWindow,
    StallCause::kPacketDelay,     StallCause::kRetransmission,
};

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Table 3: stall breakdown by cause (volume # / time T, %)",
               "Table 3 (paper §3.4)", flows);
  const auto runs = run_all_services(flows);

  std::vector<analysis::StallBreakdown> bds;
  for (const auto& run : runs) {
    bds.push_back(analysis::make_stall_breakdown(run.result.analyses));
  }

  stats::Table table;
  table.set_header({"stall type", "cloud # (ppr)", "cloud T (ppr)",
                    "soft # (ppr)", "soft T (ppr)", "web # (ppr)",
                    "web T (ppr)"});
  for (int r = 0; r < 6; ++r) {
    std::vector<std::string> row{analysis::to_string(kRows[r])};
    for (int s = 0; s < 3; ++s) {
      row.push_back(str_format("%5.1f (%4.1f)",
                               bds[static_cast<std::size_t>(s)].volume_fraction(kRows[r]) * 100,
                               kPaper[r][s].vol));
      row.push_back(str_format("%5.1f (%4.1f)",
                               bds[static_cast<std::size_t>(s)].time_fraction(kRows[r]) * 100,
                               kPaper[r][s].time));
    }
    table.add_row(row);
  }
  {
    std::vector<std::string> row{"undetermined"};
    for (int s = 0; s < 3; ++s) {
      const auto& bd = bds[static_cast<std::size_t>(s)];
      row.push_back(str_format(
          "%5.1f (  - )", bd.volume_fraction(StallCause::kUndetermined) * 100));
      row.push_back(str_format(
          "%5.1f (  - )", bd.time_fraction(StallCause::kUndetermined) * 100));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\ntotal stalls: cloud=%llu soft=%llu web=%llu\n",
              static_cast<unsigned long long>(bds[0].total_count),
              static_cast<unsigned long long>(bds[1].total_count),
              static_cast<unsigned long long>(bds[2].total_count));
  std::printf("paper shape checks: retransmission dominates stall *time* in "
              "every service;\nweb search stalls are mostly data-unavailable "
              "by volume; zero-window time is largest for software "
              "download.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
