// Ablation: sensitivity of TAPO's stall detection to the threshold
// multiplier tau (the paper sets tau = 2: a sender should move at least one
// packet every 2 RTTs).
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Ablation: stall threshold tau in min(tau*SRTT, RTO)",
               "stall definition (paper §2.2)", flows);

  stats::Table t;
  t.set_header({"tau", "cloud stalls", "cloud time(s)", "soft stalls",
                "soft time(s)", "web stalls", "web time(s)"});
  for (double tau : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    workload::ExperimentConfig base;
    base.analyzer.tau = tau;
    std::vector<std::string> row{str_format("%.1f%s", tau,
                                            tau == 2.0 ? " (paper)" : "")};
    for (auto svc : {workload::Service::kCloudStorage,
                     workload::Service::kSoftwareDownload,
                     workload::Service::kWebSearch}) {
      workload::ExperimentConfig cfg = base;
      cfg.profile = workload::profile_for(svc);
      cfg.flows = flows;
      cfg.seed = kBenchSeed;
      const auto res = workload::run_experiment(cfg, bench_threads());
      const auto bd = analysis::make_stall_breakdown(res.analyses);
      row.push_back(str_format("%llu",
                               static_cast<unsigned long long>(bd.total_count)));
      row.push_back(str_format("%.0f", bd.total_time.sec()));
    }
    t.add_row(row);
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nreading: stall counts fall monotonically with tau; tau=2 "
              "captures RTO-scale gaps while\nignoring ordinary ack-clock "
              "jitter.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
