// Ablation: S-RTO design parameters (DESIGN.md §5).
//   - T1, the packets_out threshold for arming the probe (paper: 5 web / 10
//     cloud),
//   - T2, the cwnd floor below which the probe does not halve cwnd
//     (paper: 5),
//   - the probe timer multiple of SRTT (paper: 2).
// Reports mean/p90 short-flow latency and the retransmission-ratio cost.
#include <cstdio>

#include "common.h"
#include "stats/cdf.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

namespace {

struct Outcome {
  double mean_lat = 0, p90_lat = 0;
  double retrans_pct = 0;
  std::uint64_t rto_fires = 0, probes = 0;
};

Outcome run_with(std::optional<tcp::SrtoConfig> srto, std::size_t flows) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  cfg.flows = flows;
  cfg.seed = kBenchSeed;
  cfg.analyze = false;
  if (srto) {
    cfg.recovery = tcp::RecoveryMechanism::kSrto;
    cfg.srto = srto;
  }
  const auto res = workload::run_experiment(cfg, bench_threads());
  Outcome out;
  stats::Cdf lat;
  for (const auto& o : res.outcomes) {
    out.rto_fires += o.sender_stats.rto_fires;
    out.probes += o.sender_stats.srto_probes;
    for (const auto& r : o.metrics.requests) {
      if (r.completed && r.server_acked_resp != TimePoint()) {
        lat.add(r.latency().sec());
      }
    }
  }
  if (!lat.empty()) {
    out.mean_lat = lat.mean();
    out.p90_lat = lat.percentile(0.9);
  }
  out.retrans_pct = res.retrans_ratio() * 100.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service(600);
  print_banner("Ablation: S-RTO parameters (T1, T2, probe timer)",
               "design choices of Alg. 1 (paper §5.1)", flows);

  const auto native = run_with(std::nullopt, flows);
  std::printf("native Linux baseline: mean=%.3fs p90=%.3fs retrans=%.1f%% "
              "rtos=%llu\n\n",
              native.mean_lat, native.p90_lat, native.retrans_pct,
              static_cast<unsigned long long>(native.rto_fires));

  stats::Table t;
  t.set_header({"variant", "mean lat", "p90 lat", "retrans%", "RTO fires",
                "probes"});
  auto add = [&](const std::string& name, tcp::SrtoConfig cfg) {
    const auto o = run_with(cfg, flows);
    t.add_row({name, str_format("%+.1f%%", (o.mean_lat - native.mean_lat) /
                                               native.mean_lat * 100),
               str_format("%+.1f%%",
                          (o.p90_lat - native.p90_lat) / native.p90_lat * 100),
               str_format("%.1f%%", o.retrans_pct),
               str_format("%llu", static_cast<unsigned long long>(o.rto_fires)),
               str_format("%llu", static_cast<unsigned long long>(o.probes))});
  };

  tcp::SrtoConfig base;
  base.t1 = 5;  // the paper's web-search setting
  base.t2 = 5;
  base.probe_rtt_mult = 2.0;
  add("paper (T1=5,T2=5,2xRTT)", base);

  for (std::uint32_t t1 : {2u, 10u, 20u}) {
    auto v = base;
    v.t1 = t1;
    add(str_format("T1=%u", t1), v);
  }
  for (std::uint32_t t2 : {0u, 2u, 20u}) {
    auto v = base;
    v.t2 = t2;
    add(str_format("T2=%u", t2), v);
  }
  for (double mult : {1.5, 3.0, 4.0}) {
    auto v = base;
    v.probe_rtt_mult = mult;
    add(str_format("probe=%.1fxRTT", mult), v);
  }
  {
    // The paper's stated future work: suppress unnecessary probes.
    auto v = base;
    v.adaptive = true;
    add("adaptive (future work)", v);
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nreading: larger T1 arms the probe more often (fewer RTOs, "
              "more probes); shorter probe timers\nrecover faster but "
              "retransmit more; T2 trades cwnd caution against recovery "
              "speed.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
