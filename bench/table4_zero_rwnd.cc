// Table 4: probability that a flow suffers a zero receive window, as a
// function of its initial receive window (in MSS).
//
// Paper shape: monotonically decreasing in the initial window; >50% for
// software-download flows below 11 MSS.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Table 4: P(zero rwnd) vs initial receive window (MSS)",
               "Table 4 (paper §3.4)", flows);
  const auto runs = run_all_services(flows);

  // Bucket edges chosen to isolate the paper's init-rwnd classes.
  const std::vector<std::uint32_t> edges = {0, 10, 44, 181, 647, 1296, 10000};
  const char* labels[] = {"2",  "11",  "45", "182", "648", "1297"};
  // Paper values (cloud row then software row); '-' = no flows there.
  const double paper_cloud[] = {-1, -1, 11.5, 9.0, 7.5, 1.9};
  const double paper_soft[] = {56.5, 54.2, 28.4, 3.0, -1, -1};

  stats::Table table;
  table.set_header({"init rwnd (MSS)", "2", "11", "45", "182", "648", "1297"});
  for (std::size_t s = 0; s < 2; ++s) {  // cloud, software
    const auto prob =
        analysis::zero_rwnd_probability(runs[s].result.analyses, edges);
    const double* paper = s == 0 ? paper_cloud : paper_soft;
    std::vector<std::string> row{s == 0 ? "cloud stor. %" : "soft. down. %"};
    for (std::size_t b = 0; b < prob.size(); ++b) {
      if (paper[b] < 0) {
        row.push_back(str_format("%.1f ( - )", prob[b] * 100));
      } else {
        row.push_back(str_format("%.1f (%.1f)", prob[b] * 100, paper[b]));
      }
    }
    table.add_row(row);
  }
  (void)labels;
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape check: smaller initial windows -> higher "
              "zero-window probability.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
