// Figure 6: distribution of the client's initial receive window (in MSS).
//
// Paper shape: ~18% of software-download flows advertise < 10 MSS (some as
// little as 2 MSS); cloud-storage and web-search clients use large windows.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 6: distribution of initial receive windows (MSS)",
               "Fig. 6 (paper §3.4)", flows);
  const auto runs = run_all_services(flows);

  // The paper's x-axis buckets.
  const std::vector<double> xs = {2, 5, 11, 22, 45, 182, 364, 1297, 1456};
  for (const auto& run : runs) {
    const auto cdf = analysis::init_rwnd_cdf_mss(run.result.analyses);
    std::printf("%-20s", to_string(run.service));
    for (double x : xs) {
      std::printf(" F(%4.0f)=%.2f", x, cdf.fraction_at_most(x));
    }
    std::printf("\n");
  }
  const auto soft = analysis::init_rwnd_cdf_mss(runs[1].result.analyses);
  std::printf("\nsoftware download flows with init rwnd < 10 MSS: %.0f%% "
              "(paper ~18%%)\n",
              soft.fraction_at_most(10.0) * 100.0);
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
