// Figure 7: context of double-retransmission stalls — (a) CDF of the
// relative position within the flow; (b) CDF of the in-flight size.
//
// Paper shape: positions are near-uniform (random drops); web search has
// the smallest in-flight sizes (short flows), cloud/software medians 5-8.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 7: context for double-retransmission stalls",
               "Fig. 7a/7b (paper §4.1)", flows);
  const auto runs = run_all_services(flows);

  std::printf("-- Fig. 7a: relative position of the stalled segment --\n");
  for (const auto& run : runs) {
    print_cdf(to_string(run.service),
              analysis::stall_position_cdf(run.result.analyses,
                                           analysis::RetransCause::kDoubleRetrans),
              "");
  }
  std::printf("(paper: roughly uniform in [0,1] for all services)\n\n");

  std::printf("-- Fig. 7b: in-flight size when the stall happened --\n");
  for (const auto& run : runs) {
    print_cdf(to_string(run.service),
              analysis::stall_inflight_cdf(run.result.analyses,
                                           analysis::RetransCause::kDoubleRetrans),
              " pkts");
  }
  std::printf("(paper medians: cloud ~5, software ~8, web smallest)\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
