// Differential protocol chaos storm: hostile-network scenarios vs the
// runtime TCP invariant monitor.
//
// Every named chaos scenario in sim::ChaosScenario::catalog() is run with
// many derived seeds against each calibrated service profile, under all
// three recovery mechanisms {Native, TLP, S-RTO}. The same (scenario, seed)
// pair drives the identical workload and the identical hostile network for
// every mechanism, so any behavioral difference is attributable to the
// recovery algorithm alone — the paper's A/B methodology (§5.2) pointed at
// adversarial paths instead of production ones.
//
// Hard expectations (exit code 1 on violation):
//   * zero invariant violations (tcp::InvariantMonitor) across every flow;
//   * zero watchdog trips (FlowStatus::kSimDiverged) — no scenario may
//     drive the simulation into a runaway event loop;
//   * byte-stream delivery integrity: every completed flow's reassembled
//     stream hash equals the sent stream hash (DeliverySummary::intact);
//   * no silent wedges: a non-completed flow must be classified
//     kRwndLimited or kTimeCapped, never an unexplained state;
//   * the chaos engine visibly injected (otherwise the storm is inert);
//   * S-RTO spurious-retransmission budget: summed DSACK-reported spurious
//     retransmissions under S-RTO stay within a factor + slack of Native's
//     (the probe is allowed to be somewhat more aggressive — that is its
//     design — but must not blow up under hostile paths).
//
// Every failure line prints a single replay command:
//   bench/chaos_storm --replay-seed=<u64> --scenario=<name>
// which re-runs that one seeded scenario across all profiles and recovery
// modes with per-flow detail.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "sim/chaos.h"
#include "stats/table.h"
#include "tcp/invariants.h"
#include "telemetry/telemetry.h"
#include "util/env.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

namespace {

const std::vector<workload::Service> kServices = {
    workload::Service::kCloudStorage, workload::Service::kSoftwareDownload,
    workload::Service::kWebSearch};

const std::vector<tcp::RecoveryMechanism> kModes = {
    tcp::RecoveryMechanism::kNative, tcp::RecoveryMechanism::kTlp,
    tcp::RecoveryMechanism::kSrto};

const char* mode_name(tcp::RecoveryMechanism m) {
  switch (m) {
    case tcp::RecoveryMechanism::kNative: return "native";
    case tcp::RecoveryMechanism::kTlp: return "tlp";
    case tcp::RecoveryMechanism::kSrto: return "s-rto";
  }
  return "?";
}

/// Deterministic per-(service, scenario, index) seed, independent of the
/// recovery mode so all three mechanisms replay the identical storm.
std::uint64_t storm_seed(std::size_t svc, std::size_t scen, std::size_t i) {
  Rng r(kBenchSeed ^ (static_cast<std::uint64_t>(svc + 1) << 40) ^
        (static_cast<std::uint64_t>(scen + 1) << 20) ^ (i + 1));
  return r.next_u64();
}

/// One seeded scenario instance under one recovery mode.
workload::FlowOutcome run_one(workload::Service svc,
                              tcp::RecoveryMechanism mode,
                              const sim::ChaosScenario& sc,
                              std::uint64_t seed) {
  const workload::ServiceProfile profile = workload::profile_for(svc);
  Rng rng(seed);
  workload::FlowScenario scenario =
      workload::draw_scenario(profile, rng, (seed & 0xffff) + 1);
  scenario.connection.sender.recovery = mode;

  workload::FlowGuards guards;
  guards.chaos = sc.config;
  // Per-instance reseed of the private copy (scenario_seed ^ storm seed).
  guards.chaos.seed ^= seed;
  guards.verify_delivery = true;
  guards.event_budget = workload::kDefaultEventBudget;
  guards.flow_id = seed;
  return workload::run_flow(scenario, rng.split(), Duration::seconds(600.0),
                            workload::TraceCapture::kNone, guards);
}

struct ModeTotals {
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  std::uint64_t rwnd_limited = 0;
  std::uint64_t time_capped = 0;
  std::uint64_t diverged = 0;
  std::uint64_t violations = 0;
  std::uint64_t intact_failures = 0;
  std::uint64_t unexplained = 0;
  std::uint64_t injected = 0;
  std::uint64_t segments = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t dsacks = 0;  // spurious retransmissions reported by peer
};

void replay_command(const sim::ChaosScenario& sc, std::uint64_t seed) {
  std::printf("  replay: bench/chaos_storm --replay-seed=%" PRIu64
              " --scenario=%s\n",
              seed, sc.name.c_str());
}

/// Full-detail verdict line for replay mode.
void print_detail(workload::Service svc, tcp::RecoveryMechanism mode,
                  const workload::FlowOutcome& out) {
  const auto& d = out.delivery;
  std::printf(
      "  %-18s %-6s  status=%-12s violations=%" PRIu64 " injected=%" PRIu64
      "  segs=%" PRIu64 " rexmit=%" PRIu64 " dsacks=%" PRIu64
      "  delivery=%s (%" PRIu64 "/%" PRIu64 " bytes, %" PRIu64 " holes)\n",
      workload::to_string(svc), mode_name(mode), to_string(out.status),
      out.invariant_violations, out.chaos_injected,
      out.sender_stats.segments_sent, out.sender_stats.retransmissions,
      out.sender_stats.dsacks_received,
      d ? (d->intact() ? "intact" : "CORRUPT") : "unchecked",
      d ? d->in_order_bytes : 0, d ? d->expected_bytes : 0,
      d ? d->hole_ranges : 0);
}

int run_replay(std::uint64_t seed, const std::string& scenario_name) {
  const sim::ChaosScenario* sc = sim::ChaosScenario::by_name(scenario_name);
  if (sc == nullptr) {
    std::printf("unknown scenario '%s'; catalog:", scenario_name.c_str());
    for (const auto& s : sim::ChaosScenario::catalog()) {
      std::printf(" %s", s.name.c_str());
    }
    std::printf("\n");
    return 2;
  }
  tcp::InvariantMonitor::set_enabled(true);
  std::printf("replaying scenario '%s' seed %" PRIu64
              " across %zu profiles x %zu recovery modes\n\n",
              sc->name.c_str(), seed, kServices.size(), kModes.size());
  bool failed = false;
  for (auto svc : kServices) {
    for (auto mode : kModes) {
      const auto out = run_one(svc, mode, *sc, seed);
      print_detail(svc, mode, out);
      const bool bad_delivery =
          out.status == FlowStatus::kCompleted && out.delivery &&
          !out.delivery->intact();
      if (out.invariant_violations > 0 ||
          out.status == FlowStatus::kSimDiverged || bad_delivery) {
        failed = true;
      }
    }
  }
  if (failed) {
    const auto recent = tcp::InvariantMonitor::recent();
    if (!recent.empty()) {
      std::printf("\nrecent invariant violations:\n");
      for (const auto& v : recent) {
        std::printf("  t=%+" PRId64 "us kind=%s seq=%u flow=%" PRIx64 "\n",
                    v.event_time_us, tcp::to_string(v.kind), v.seq, v.flow);
      }
    }
    std::printf("\nRESULT: FAIL\n");
    return 1;
  }
  std::printf("\nRESULT: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  telemetry::set_metrics_enabled(true);

  std::uint64_t replay_seed = 0;
  bool have_replay = false;
  std::string replay_scenario;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--replay-seed=", 14) == 0) {
      const auto parsed = util::parse_u64(argv[i] + 14);
      if (!parsed) {
        std::printf("bad --replay-seed value '%s'\n", argv[i] + 14);
        return 2;
      }
      replay_seed = *parsed;
      have_replay = true;
    } else if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      replay_scenario = argv[i] + 11;
    }
  }
  if (have_replay || !replay_scenario.empty()) {
    if (!have_replay || replay_scenario.empty()) {
      std::printf("replay needs BOTH --replay-seed=<u64> and "
                  "--scenario=<name>\n");
      return 2;
    }
    return run_replay(replay_seed, replay_scenario);
  }

  const auto& catalog = sim::ChaosScenario::catalog();
  // Seeds per (service, scenario) cell. The default yields
  // 3 * |catalog| * 48 >= 1000 seeded scenario instances per recovery mode.
  const std::size_t per_cell = flows_per_service(48);
  const std::size_t instances = kServices.size() * catalog.size() * per_cell;

  print_banner("Protocol chaos storm: invariants + delivery integrity",
               "hostile-network differential harness (Native vs TLP vs S-RTO)",
               instances);
  std::printf("%zu scenarios x %zu profiles x %zu seeds = %zu instances "
              "per recovery mode\n\n",
              catalog.size(), kServices.size(), per_cell, instances);

  tcp::InvariantMonitor::set_enabled(true);
  tcp::InvariantMonitor::reset();

  bool failed = false;
  std::vector<ModeTotals> totals(kModes.size());

  for (std::size_t m = 0; m < kModes.size(); ++m) {
    const auto mode = kModes[m];
    ModeTotals& t = totals[m];
    for (std::size_t s = 0; s < kServices.size(); ++s) {
      for (std::size_t c = 0; c < catalog.size(); ++c) {
        const sim::ChaosScenario& sc = catalog[c];
        for (std::size_t i = 0; i < per_cell; ++i) {
          const std::uint64_t seed = storm_seed(s, c, i);
          const auto out = run_one(kServices[s], mode, sc, seed);
          ++t.flows;
          t.violations += out.invariant_violations;
          t.injected += out.chaos_injected;
          t.segments += out.sender_stats.segments_sent;
          t.retransmissions += out.sender_stats.retransmissions;
          t.dsacks += out.sender_stats.dsacks_received;
          switch (out.status) {
            case FlowStatus::kCompleted: ++t.completed; break;
            case FlowStatus::kRwndLimited: ++t.rwnd_limited; break;
            case FlowStatus::kTimeCapped: ++t.time_capped; break;
            case FlowStatus::kSimDiverged: ++t.diverged; break;
          }
          if (out.invariant_violations > 0) {
            std::printf("FAIL: %" PRIu64 " invariant violation(s): %s / %s "
                        "/ %s\n",
                        out.invariant_violations,
                        workload::to_string(kServices[s]), sc.name.c_str(),
                        mode_name(mode));
            replay_command(sc, seed);
            failed = true;
          }
          if (out.status == FlowStatus::kSimDiverged) {
            std::printf("FAIL: simulation watchdog tripped: %s / %s / %s\n",
                        workload::to_string(kServices[s]), sc.name.c_str(),
                        mode_name(mode));
            replay_command(sc, seed);
            failed = true;
          }
          const bool completed = out.status == FlowStatus::kCompleted;
          if (completed && out.delivery && !out.delivery->intact()) {
            ++t.intact_failures;
            std::printf("FAIL: delivery integrity broken: %s / %s / %s "
                        "(%" PRIu64 "/%" PRIu64 " bytes, %" PRIu64
                        " holes, hash %s)\n",
                        workload::to_string(kServices[s]), sc.name.c_str(),
                        mode_name(mode), out.delivery->in_order_bytes,
                        out.delivery->expected_bytes,
                        out.delivery->hole_ranges,
                        out.delivery->delivered_hash ==
                                out.delivery->expected_hash
                            ? "ok"
                            : "MISMATCH");
            replay_command(sc, seed);
            failed = true;
          }
          if (!completed && out.status != FlowStatus::kRwndLimited &&
              out.status != FlowStatus::kTimeCapped &&
              out.status != FlowStatus::kSimDiverged) {
            ++t.unexplained;
            std::printf("FAIL: unexplained non-completion: %s / %s / %s\n",
                        workload::to_string(kServices[s]), sc.name.c_str(),
                        mode_name(mode));
            replay_command(sc, seed);
            failed = true;
          }
        }
      }
    }
  }

  stats::Table table;
  table.set_header({"recovery", "flows", "done", "rwnd-lim", "time-cap",
                    "diverged", "violations", "rexmit%", "dsacks"});
  for (std::size_t m = 0; m < kModes.size(); ++m) {
    const ModeTotals& t = totals[m];
    const double rex =
        t.segments ? 100.0 * static_cast<double>(t.retransmissions) /
                         static_cast<double>(t.segments)
                   : 0.0;
    table.add_row({mode_name(kModes[m]), str_format("%llu",
                       static_cast<unsigned long long>(t.flows)),
                   str_format("%llu", static_cast<unsigned long long>(t.completed)),
                   str_format("%llu", static_cast<unsigned long long>(t.rwnd_limited)),
                   str_format("%llu", static_cast<unsigned long long>(t.time_capped)),
                   str_format("%llu", static_cast<unsigned long long>(t.diverged)),
                   str_format("%llu", static_cast<unsigned long long>(t.violations)),
                   str_format("%5.2f", rex),
                   str_format("%llu", static_cast<unsigned long long>(t.dsacks))});
  }
  std::printf("%s", table.render().c_str());

  // Global cross-checks.
  const std::uint64_t monitor_total = tcp::InvariantMonitor::total_violations();
  std::uint64_t sink_total = 0, injected_total = 0;
  for (const auto& t : totals) {
    sink_total += t.violations;
    injected_total += t.injected;
  }
  if (monitor_total != sink_total) {
    std::printf("FAIL: monitor counted %" PRIu64
                " violations but flow attribution summed %" PRIu64 "\n",
                monitor_total, sink_total);
    failed = true;
  }
  if (injected_total == 0) {
    std::printf("FAIL: the chaos engine injected nothing (storm inert?)\n");
    failed = true;
  }

  // S-RTO spurious-retransmission budget vs Native. S-RTO probes earlier
  // than the RTO by design, so some extra DSACK-reported spurious
  // retransmissions are expected (Table 9's 0.9% vs 0.6%); the budget
  // catches it going pathological under hostile paths.
  const ModeTotals& native = totals[0];
  const ModeTotals& srto = totals[2];
  const std::uint64_t budget =
      native.dsacks * 2 + native.flows / 10 + 50;
  std::printf("\nS-RTO spurious budget: dsacks native=%" PRIu64
              " tlp=%" PRIu64 " s-rto=%" PRIu64 " (budget %" PRIu64 ")\n",
              native.dsacks, totals[1].dsacks, srto.dsacks, budget);
  if (srto.dsacks > budget) {
    std::printf("FAIL: S-RTO spurious retransmissions %" PRIu64
                " exceed budget %" PRIu64 " (native %" PRIu64 ")\n",
                srto.dsacks, budget, native.dsacks);
    failed = true;
  }

  std::printf("\ninvariant monitor: %" PRIu64 " violations across %" PRIu64
              " chaos-injected packet mutations\n",
              monitor_total, injected_total);

  tapo::bench::write_telemetry_artifacts();
  if (failed) {
    std::printf("\nRESULT: FAIL\n");
    return 1;
  }
  std::printf("\nRESULT: OK\n");
  return 0;
}
