// Fleet-aggregation scale harness: N simulated server shards each emit a
// binary flow-record stream; the streams are parsed and folded into one
// fleet view. Two hard gates (exit code 1 on violation):
//
//   * Merge determinism: folding the per-shard snapshots sequentially, in
//     groups of 2, in groups of 4, and in a seeded-shuffle order must all
//     yield a byte-identical ASCII fleet report and an identical
//     Prometheus exposition — the DESIGN.md §13 contract.
//   * Ingest throughput: parsing + windowing the shard streams must
//     sustain at least kMinRecordsPerSec records/s (a deliberately
//     conservative floor so sanitizer builds pass; a native build is
//     orders of magnitude above it).
//
// Shard emission is also re-run for shard 0 to check writer determinism:
// the same config and seed must produce byte-identical record streams.
//
// Knobs: --shards=N (or TAPO_BENCH_SHARDS, default 4), TAPO_BENCH_FLOWS
// (flows per service per shard), TAPO_BENCH_THREADS.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "fleet/record.h"
#include "fleet/record_sink.h"
#include "fleet/window.h"
#include "telemetry/registry.h"
#include "util/rng.h"

using namespace tapo;
using namespace tapo::bench;

namespace {

/// Conservative floor: TSan slows parsing ~10x and the ctest invocation
/// runs with small flow counts, so this is far below a native build's rate.
constexpr double kMinRecordsPerSec = 10'000.0;

/// Narrow windows so even small TAPO_BENCH_FLOWS runs span several.
const fleet::FleetConfig kFleetConfig =
    fleet::FleetConfig{}.with_window(Duration::seconds(10));

/// Emits one shard's record stream: all three services, flows stamped at a
/// steady logical rate, shards staggered so their windows interleave.
std::string emit_shard(std::uint32_t shard, std::size_t flows) {
  std::ostringstream os;
  fleet::RecordWriter writer(os);
  for (auto svc : {workload::Service::kCloudStorage,
                   workload::Service::kSoftwareDownload,
                   workload::Service::kWebSearch}) {
    auto cfg = workload::ExperimentConfig{}
                   .with_profile(workload::profile_for(svc))
                   .with_flows(flows)
                   .with_seed(kBenchSeed + shard)
                   .with_analysis(true);
    workload::RunOptions options;
    options.threads = bench_threads();
    fleet::RecordSink sink(
        writer, fleet::RecordSinkConfig{}
                    .with_shard_id(shard)
                    .with_service(static_cast<std::uint8_t>(svc))
                    .with_base_time_us(static_cast<std::int64_t>(shard) *
                                       250'000)
                    .with_flow_spacing(Duration::millis(500)));
    workload::ParallelRunner runner(cfg, std::move(options));
    runner.run(sink);
  }
  return os.str();
}

std::vector<fleet::FlowRecord> parse_shard(const std::string& blob) {
  const auto result = fleet::read_records(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()));
  if (!result.ok()) {
    std::printf("FAIL: shard stream did not parse cleanly: %s at offset %llu\n",
                fleet::to_string(result.error->kind),
                static_cast<unsigned long long>(result.error->offset));
    std::exit(1);
  }
  return result.records;
}

std::string prometheus_of(const fleet::FleetSnapshot& snap) {
  telemetry::Registry::instance().reset();
  fleet::publish_fleet_metrics(snap);
  std::ostringstream os;
  telemetry::Registry::instance().export_prometheus(os);
  return os.str();
}

/// Folds per-shard snapshots with the given intermediate group size.
fleet::FleetSnapshot fold_grouped(
    const std::vector<fleet::FleetSnapshot>& shards, std::size_t group) {
  std::vector<fleet::FleetSnapshot> level = shards;
  while (level.size() > 1) {
    std::vector<fleet::FleetSnapshot> next;
    for (std::size_t i = 0; i < level.size(); i += group) {
      fleet::FleetSnapshot acc = level[i];
      for (std::size_t j = i + 1; j < i + group && j < level.size(); ++j) {
        acc.merge(level[j]);
      }
      next.push_back(std::move(acc));
    }
    level = std::move(next);
  }
  return level.front();
}

fleet::FleetSnapshot fold_shuffled(
    const std::vector<fleet::FleetSnapshot>& shards, std::uint64_t seed) {
  std::vector<std::size_t> order(shards.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  fleet::FleetSnapshot acc = shards[order[0]];
  for (std::size_t i = 1; i < order.size(); ++i) acc.merge(shards[order[i]]);
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  init_telemetry(argc, argv);
  init_shards(argc, argv);

  const std::size_t shards = bench_shards();
  const std::size_t flows = flows_per_service(100);
  print_banner("Fleet aggregation at scale: shard emit -> merge -> report",
               "fleet monitoring layer (paper §6 deployment)", flows);
  std::printf("shards: %zu  (flows/service/shard: %zu)\n\n", shards, flows);

  bool failed = false;

  // ---- emit ----
  const auto emit_start = std::chrono::steady_clock::now();
  std::vector<std::string> blobs;
  for (std::uint32_t s = 0; s < shards; ++s) {
    blobs.push_back(emit_shard(s, flows));
  }
  const double emit_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    emit_start)
          .count();

  // Writer determinism: re-emitting shard 0 must be byte-identical.
  if (emit_shard(0, flows) != blobs[0]) {
    std::printf("FAIL: shard 0 re-emission is not byte-identical\n");
    failed = true;
  }

  std::size_t total_bytes = 0;
  for (const auto& b : blobs) total_bytes += b.size();

  // ---- parse + ingest (timed; repeat until the clock has signal) ----
  std::vector<std::vector<fleet::FlowRecord>> shard_records;
  std::size_t total_records = 0;
  std::size_t reps = 0;
  const auto ingest_start = std::chrono::steady_clock::now();
  double ingest_secs = 0.0;
  do {
    shard_records.clear();
    total_records = 0;
    for (const auto& blob : blobs) {
      auto records = parse_shard(blob);
      fleet::WindowAggregator agg(kFleetConfig);
      agg.ingest(records);
      total_records += records.size();
      shard_records.push_back(std::move(records));
    }
    ++reps;
    ingest_secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - ingest_start)
                      .count();
  } while (ingest_secs < 0.2);
  const double records_per_sec =
      static_cast<double>(total_records * reps) / ingest_secs;

  std::printf("[emit]   %zu shards, %zu records, %.1f KiB in %.2fs "
              "(%.0f records/s, %.1f bytes/record)\n",
              shards, total_records, total_bytes / 1024.0, emit_secs,
              static_cast<double>(total_records) / emit_secs,
              static_cast<double>(total_bytes) /
                  static_cast<double>(total_records));
  std::printf("[ingest] parse+window %.0f records/s (%zu reps, floor %.0f)\n",
              records_per_sec, reps, kMinRecordsPerSec);
  if (records_per_sec < kMinRecordsPerSec) {
    std::printf("FAIL: ingest throughput below floor\n");
    failed = true;
  }

  // ---- merge determinism ----
  std::vector<fleet::FleetSnapshot> snapshots;
  for (const auto& records : shard_records) {
    fleet::WindowAggregator agg(kFleetConfig);
    agg.ingest(records);
    snapshots.push_back(agg.snapshot());
  }

  const fleet::FleetSnapshot seq = fold_grouped(snapshots, snapshots.size());
  const std::string report = fleet::render_fleet_report(seq);
  const std::string prom = prometheus_of(seq);

  struct Variant {
    const char* name;
    fleet::FleetSnapshot snap;
  };
  std::vector<Variant> variants;
  variants.push_back({"groups of 2", fold_grouped(snapshots, 2)});
  variants.push_back({"groups of 4", fold_grouped(snapshots, 4)});
  variants.push_back({"groups of 8", fold_grouped(snapshots, 8)});
  variants.push_back({"shuffled #1", fold_shuffled(snapshots, 17)});
  variants.push_back({"shuffled #2", fold_shuffled(snapshots, 23)});
  for (const auto& v : variants) {
    const bool snap_ok = v.snap == seq;
    const bool report_ok = fleet::render_fleet_report(v.snap) == report;
    const bool prom_ok = prometheus_of(v.snap) == prom;
    std::printf("[merge]  %-12s snapshot %s  report %s  prometheus %s\n",
                v.name, snap_ok ? "==" : "DIFFERS",
                report_ok ? "==" : "DIFFERS", prom_ok ? "==" : "DIFFERS");
    if (!snap_ok || !report_ok || !prom_ok) failed = true;
  }

  std::printf("\n%s\n", report.c_str());

  write_telemetry_artifacts();
  if (failed) {
    std::printf("RESULT: FAIL\n");
    return 1;
  }
  std::printf("RESULT: OK\n");
  return 0;
}
