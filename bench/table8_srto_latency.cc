// Table 8: latency reduction of TLP and S-RTO relative to native Linux,
// for web-search flows and cloud-storage short flows (<200 KB), plus the
// §5.2 large-flow throughput comparison.
//
// Methodology mirrors the paper's production A/B: the *same* workload
// (same seed) replayed under each recovery mechanism.
#include <cstdio>

#include "common.h"
#include "stats/cdf.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;
using tcp::RecoveryMechanism;

namespace {

constexpr std::uint64_t kShortFlowBytes = 200 * 1024;

struct LatencySets {
  stats::Cdf latency;     // short flows (seconds)
  stats::Cdf throughput;  // large flows (B/s)
};

LatencySets collect(const workload::ExperimentResult& res) {
  LatencySets out;
  for (const auto& o : res.outcomes) {
    for (const auto& r : o.metrics.requests) {
      if (!r.completed || r.server_acked_resp == TimePoint()) continue;
      if (r.response_bytes < kShortFlowBytes) {
        out.latency.add(r.latency().sec());
      } else if (r.latency() > Duration::zero()) {
        out.throughput.add(static_cast<double>(r.response_bytes) /
                           r.latency().sec());
      }
    }
  }
  return out;
}

LatencySets run(workload::Service svc, RecoveryMechanism mech,
                std::size_t flows) {
  // Pool several seeded runs per mechanism — the analogue of the paper's
  // 5-day round-robin deployment (each seed replays the same workload
  // across all three mechanisms, so comparisons stay paired).
  LatencySets pooled;
  for (std::uint64_t s = 0; s < 4; ++s) {
    workload::ExperimentConfig cfg;
    cfg.profile = workload::profile_for(svc);
    cfg.flows = flows;
    cfg.seed = kBenchSeed + s;
    cfg.analyze = false;
    cfg.recovery = mech;
    const auto part = collect(workload::run_experiment(cfg, bench_threads()));
    pooled.latency.merge(part.latency);
    pooled.throughput.merge(part.throughput);
  }
  return pooled;
}

double reduction(const stats::Cdf& base, const stats::Cdf& mech, double q) {
  const double b = q < 0 ? base.mean() : base.percentile(q);
  const double m = q < 0 ? mech.mean() : mech.percentile(q);
  return b > 0 ? (m - b) / b * 100.0 : 0.0;
}

struct PaperCol {
  double p50, p90, p95, mean;
};

void print_block(const char* name, const stats::Cdf& native,
                 const stats::Cdf& tlp, const stats::Cdf& srto,
                 PaperCol paper_tlp, PaperCol paper_srto) {
  std::printf("\n-- %s (n=%zu short flows) --\n", name, native.count());
  stats::Table t;
  t.set_header({"Quantile", "TLP (paper)", "S-RTO (paper)"});
  const struct {
    const char* label;
    double q;
    double ptlp, psrto;
  } rows[] = {
      {"50", 0.50, paper_tlp.p50, paper_srto.p50},
      {"90", 0.90, paper_tlp.p90, paper_srto.p90},
      {"95", 0.95, paper_tlp.p95, paper_srto.p95},
      {"mean", -1, paper_tlp.mean, paper_srto.mean},
  };
  for (const auto& r : rows) {
    t.add_row({r.label,
               str_format("%+.1f%% (%+.1f%%)", reduction(native, tlp, r.q),
                          r.ptlp),
               str_format("%+.1f%% (%+.1f%%)", reduction(native, srto, r.q),
                          r.psrto)});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service(600);
  print_banner("Table 8: latency reduction of TLP and S-RTO vs native Linux",
               "Table 8 + §5.2 (paper §5)", flows);

  // Web search.
  const auto web_native =
      run(workload::Service::kWebSearch, RecoveryMechanism::kNative, flows);
  const auto web_tlp =
      run(workload::Service::kWebSearch, RecoveryMechanism::kTlp, flows);
  const auto web_srto =
      run(workload::Service::kWebSearch, RecoveryMechanism::kSrto, flows);
  print_block("web search", web_native.latency, web_tlp.latency,
              web_srto.latency, {-1.2, -0.7, -4.7, -5.1},
              {-1.2, -1.3, -2.9, -11.3});

  // Cloud storage short flows.
  const auto cs_native =
      run(workload::Service::kCloudStorage, RecoveryMechanism::kNative, flows);
  const auto cs_tlp =
      run(workload::Service::kCloudStorage, RecoveryMechanism::kTlp, flows);
  const auto cs_srto =
      run(workload::Service::kCloudStorage, RecoveryMechanism::kSrto, flows);
  print_block("cloud storage (short flows)", cs_native.latency,
              cs_tlp.latency, cs_srto.latency, {-7.3, -13.6, -14.4, -15.3},
              {-19.3, -45.0, -21.4, -34.3});

  // Large-flow throughput (§5.2 text: +2.6% TLP, +3.7% S-RTO — small).
  std::printf("\n-- cloud storage large flows: mean throughput --\n");
  const double base = cs_native.throughput.mean();
  std::printf("native=%.0f B/s  TLP=%+.1f%% (paper +2.6%%)  "
              "S-RTO=%+.1f%% (paper +3.7%%)  [n=%zu]\n",
              base,
              base > 0 ? (cs_tlp.throughput.mean() - base) / base * 100 : 0.0,
              base > 0 ? (cs_srto.throughput.mean() - base) / base * 100 : 0.0,
              cs_native.throughput.count());
  std::printf("\npaper shape checks: S-RTO >= TLP on short-flow mean latency "
              "(2x+ in the paper);\nlarge-flow throughput barely moves for "
              "either mechanism.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
