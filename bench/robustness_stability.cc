// Differential capture-robustness harness: how stable is TAPO's stall
// classification when the capture lies?
//
// For each calibrated service profile the same seeded workload is analyzed
// twice — once from the pristine server-side tap and once through a
// sim::CaptureChannel impairment scenario — and the per-flow stall-cause
// histograms are compared. Flows are generated from identical per-flow
// seeds, so any disagreement is attributable to the capture artifacts, not
// the traffic.
//
// Hard expectations (exit code 1 on violation):
//   * duplication-only impairment (with dup suppression enabled on both
//     arms) and timestamp-quantization-only impairment must yield 100%
//     per-flow classification agreement on every profile;
//   * the tapo_capture_artifacts_total{kind} / tapo_flows_degraded_total
//     counter deltas of every arm must equal the CaptureQuality totals
//     summed over that arm's flows;
//   * every lossy scenario must actually degrade at least one flow
//     (non-default CaptureQuality), or the injection is a silent no-op.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "sim/capture_channel.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

namespace {

using CauseCounts = std::array<std::uint64_t, analysis::kNumStallCauses>;

/// Sum of the per-flow CaptureQuality fields that have telemetry counters.
struct QualityTotals {
  std::uint64_t duplicate = 0;
  std::uint64_t seq_gap = 0;
  std::uint64_t truncated = 0;
  std::uint64_t mid_stream = 0;
  std::uint64_t suspect_stall = 0;
  std::uint64_t degraded = 0;

  bool operator==(const QualityTotals&) const = default;
  QualityTotals operator-(const QualityTotals& o) const {
    return {duplicate - o.duplicate,     seq_gap - o.seq_gap,
            truncated - o.truncated,     mid_stream - o.mid_stream,
            suspect_stall - o.suspect_stall, degraded - o.degraded};
  }
};

/// One FlowResult per flow, in index order: records the stall-cause
/// histogram and the capture-quality totals, nothing else retained.
class StabilitySink : public workload::FlowSink {
 public:
  void consume(workload::FlowResult&& result) override {
    CauseCounts counts{};
    for (const auto& fa : result.analyses) {
      for (const auto& s : fa.stalls) {
        ++counts[static_cast<std::size_t>(s.cause)];
      }
      totals_.duplicate += fa.capture.dup_packets;
      totals_.seq_gap += fa.capture.seq_gaps;
      totals_.truncated += fa.capture.truncated_packets;
      totals_.mid_stream += fa.capture.mid_stream ? 1 : 0;
      totals_.suspect_stall += fa.capture.suspect_stalls;
      if (fa.capture.degraded()) ++totals_.degraded;
    }
    causes_.push_back(counts);
  }

  const std::vector<CauseCounts>& causes() const { return causes_; }
  const QualityTotals& totals() const { return totals_; }

 private:
  std::vector<CauseCounts> causes_;
  QualityTotals totals_;
};

QualityTotals counters_now() {
  auto& reg = telemetry::Registry::instance();
  const auto kind = [&reg](const char* k) {
    return reg.counter("tapo_capture_artifacts_total", {{"kind", k}}).value();
  };
  QualityTotals t;
  t.duplicate = kind("duplicate");
  t.seq_gap = kind("seq_gap");
  t.truncated = kind("truncated");
  t.mid_stream = kind("mid_stream");
  t.suspect_stall = kind("suspect_stall");
  t.degraded = reg.counter("tapo_flows_degraded_total").value();
  return t;
}

struct ArmResult {
  StabilitySink sink;
  bool counters_ok = true;
};

/// Runs one (service, impairment) arm and cross-checks the telemetry
/// counter deltas against the sink's CaptureQuality sums.
ArmResult run_arm(workload::Service svc, std::size_t flows,
                  const sim::CaptureImpairments& imp,
                  const analysis::AnalyzerConfig& acfg) {
  auto cfg = workload::ExperimentConfig{}
                 .with_profile(workload::profile_for(svc))
                 .with_flows(flows)
                 .with_seed(kBenchSeed)
                 .with_analyzer(acfg);
  if (imp.enabled()) cfg.with_impairments(imp);
  workload::RunOptions options;
  options.threads = bench_threads();
  const QualityTotals before = counters_now();
  ArmResult arm;
  workload::ParallelRunner runner(cfg, std::move(options));
  runner.run(arm.sink);
  arm.counters_ok = (counters_now() - before) == arm.sink.totals();
  return arm;
}

struct Agreement {
  double overall = 1.0;  // fraction of flows with identical histograms
  std::array<double, analysis::kNumStallCauses> per_cause{};
};

Agreement compare(const std::vector<CauseCounts>& pristine,
                  const std::vector<CauseCounts>& impaired) {
  Agreement a;
  a.per_cause.fill(1.0);
  if (pristine.size() != impaired.size() || pristine.empty()) {
    a.overall = 0.0;
    a.per_cause.fill(0.0);
    return a;
  }
  const double n = static_cast<double>(pristine.size());
  std::size_t whole = 0;
  std::array<std::size_t, analysis::kNumStallCauses> match{};
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    if (pristine[i] == impaired[i]) ++whole;
    for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
      if (pristine[i][c] == impaired[i][c]) ++match[c];
    }
  }
  a.overall = static_cast<double>(whole) / n;
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    a.per_cause[c] = static_cast<double>(match[c]) / n;
  }
  return a;
}

struct Scenario {
  const char* name;
  sim::CaptureImpairments imp;
  /// Analyzer hardening knobs, applied to BOTH arms: the comparison always
  /// isolates what the channel did, never a config difference.
  analysis::AnalyzerConfig acfg;
  bool must_agree_100 = false;
  bool expect_degraded = false;  // injection must visibly degrade flows
};

std::vector<Scenario> scenarios() {
  using analysis::AnalyzerConfig;
  using sim::CaptureImpairments;
  // Dup scenarios declare the capture as duplicating (suppression on);
  // quantization scenarios declare the capture clock's granularity
  // (analysis floors to it, so the coarse clock is provably harmless).
  const auto dup_cfg = AnalyzerConfig{}.with_dup_window(Duration::micros(1));
  const auto quant_cfg =
      AnalyzerConfig{}.with_ts_quantum(Duration::micros(100));
  auto combined_cfg = dup_cfg;
  combined_cfg.with_ts_quantum(Duration::micros(100));

  std::vector<Scenario> s;
  s.push_back({"drop 1%", CaptureImpairments{}.with_drop(0.01), {}, false,
               true});
  s.push_back({"burst drop", CaptureImpairments{}.with_burst_drop(0.005, 0.6),
               {}, false, true});
  s.push_back({"snaplen 54", CaptureImpairments{}.with_snaplen(54), {}, false,
               true});
  s.push_back({"dup only 5%", CaptureImpairments{}.with_duplication(0.05),
               dup_cfg, true, true});
  s.push_back({"reorder 5%", CaptureImpairments{}.with_reordering(0.05), {},
               false, false});
  s.push_back({"quantize 100us",
               CaptureImpairments{}.with_quantization(Duration::micros(100)),
               quant_cfg, true, false});
  s.push_back({"jitter 50us",
               CaptureImpairments{}.with_jitter(Duration::micros(50)), {},
               false, false});
  s.push_back({"mid-stream", CaptureImpairments{}.with_mid_stream_start(3),
               {}, false, true});
  s.push_back({"combined",
               CaptureImpairments{}
                   .with_drop(0.01)
                   .with_snaplen(54)
                   .with_duplication(0.02)
                   .with_quantization(Duration::micros(100)),
               combined_cfg, false, true});
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  // The counter cross-check needs the metrics registry live even when no
  // telemetry artifact directory was requested.
  telemetry::set_metrics_enabled(true);

  const std::size_t flows = flows_per_service(120);
  print_banner("Capture-robustness stability: pristine vs impaired TAPO",
               "capture-realism harness (paper §3 methodology)", flows);

  const auto services = {workload::Service::kCloudStorage,
                         workload::Service::kSoftwareDownload,
                         workload::Service::kWebSearch};
  const auto scens = scenarios();

  bool failed = false;
  stats::Table table;
  table.set_header({"scenario", "cloud s.", "software d.", "web search"});

  // Per-cause agreement for the combined scenario, per service.
  std::vector<Agreement> combined_agreements;

  std::vector<std::vector<std::string>> rows(scens.size());
  for (std::size_t i = 0; i < scens.size(); ++i) rows[i] = {scens[i].name};

  for (auto svc : services) {
    for (std::size_t i = 0; i < scens.size(); ++i) {
      const Scenario& sc = scens[i];
      // Per-scenario pristine baseline, analyzed with the scenario's own
      // analyzer config: the comparison isolates what the channel did.
      const auto pristine =
          run_arm(svc, flows, sim::CaptureImpairments{}, sc.acfg);
      const auto arm = run_arm(svc, flows, sc.imp, sc.acfg);
      if (!pristine.counters_ok) {
        std::printf("FAIL: counter/quality mismatch on pristine %s / %s\n",
                    workload::to_string(svc), sc.name);
        failed = true;
      }
      const Agreement agree =
          compare(pristine.sink.causes(), arm.sink.causes());
      const auto& t = arm.sink.totals();

      rows[i].push_back(str_format("%5.1f%%  (deg %llu)", agree.overall * 100,
                                   static_cast<unsigned long long>(t.degraded)));

      if (!arm.counters_ok) {
        std::printf("FAIL: counter/quality mismatch: %s / %s\n",
                    workload::to_string(svc), sc.name);
        failed = true;
      }
      if (sc.must_agree_100 && agree.overall < 1.0) {
        std::printf("FAIL: %s / %s agreement %.2f%% (must be 100%%)\n",
                    workload::to_string(svc), sc.name,
                    agree.overall * 100);
        failed = true;
      }
      if (sc.expect_degraded && t.degraded == 0) {
        std::printf("FAIL: %s / %s degraded no flow (injection inert?)\n",
                    workload::to_string(svc), sc.name);
        failed = true;
      }
      if (std::string(sc.name) == "combined") {
        combined_agreements.push_back(agree);
      }
    }
  }

  std::printf("\nPer-flow stall-classification agreement vs pristine "
              "(deg = flows with non-default CaptureQuality):\n");
  for (auto& r : rows) table.add_row(r);
  std::printf("%s", table.render().c_str());

  stats::Table causes;
  causes.set_header({"combined: per-cause agreement", "cloud s.",
                     "software d.", "web search"});
  for (std::size_t c = 0; c < analysis::kNumStallCauses; ++c) {
    std::vector<std::string> row{
        analysis::to_string(static_cast<analysis::StallCause>(c))};
    for (const auto& a : combined_agreements) {
      row.push_back(str_format("%5.1f%%", a.per_cause[c] * 100));
    }
    causes.add_row(row);
  }
  std::printf("\n%s", causes.render().c_str());

  std::printf("\ncounter cross-check: tapo_capture_artifacts_total{kind} and "
              "tapo_flows_degraded_total deltas matched the summed "
              "per-flow CaptureQuality on every arm%s\n",
              failed ? " EXCEPT WHERE NOTED ABOVE" : "");

  tapo::bench::write_telemetry_artifacts();
  if (failed) {
    std::printf("\nRESULT: FAIL\n");
    return 1;
  }
  std::printf("\nRESULT: OK\n");
  return 0;
}
