// Streaming-pipeline scale harness: proves the bounded-memory claim with
// an allocator-level measurement, not just the pipeline's own ledger.
//
// A multi-flow trace at least 10x larger than the memory budget is written
// as a pcap file, then analyzed twice:
//
//   batch      pcap::read_file -> Analyzer::analyze  (whole arena resident)
//   streaming  pcap::StreamingReader -> LiveAnalyzer, both charging one
//              util::MemoryBudget
//
// Global operator new/delete are replaced with a live-byte counter
// (malloc_usable_size-symmetric, like perf_micro's allocation counters),
// so "peak resident" below means real heap bytes, including everything the
// budget ledger does NOT track (stream buffers, hash-table nodes,
// transient demux state). Hard gates (exit code 1 on violation):
//
//   * the trace arena is >= 10x the budget limit;
//   * the streaming ledger's high-water mark stays <= the limit;
//   * the allocator-measured streaming peak stays <= the limit;
//   * the allocator-measured batch peak EXCEEDS the limit (i.e. the gate
//     would catch a regression that quietly re-materializes the trace);
//   * streaming and batch agree on the packet count, and streaming
//     analyzes at least as many flow segments as batch (budget evictions
//     split flows, never drop packets silently).
//
// Knobs: TAPO_BENCH_FLOWS caps the flow count (default 600; generation
// also stops once the arena passes the size target), TAPO_BENCH_THREADS
// is unused (single-threaded by design: the counters are not atomic-free).
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <new>
#include <string>

#include "common.h"
#include "pcap/pcap.h"
#include "tapo/analyzer.h"
#include "tapo/live.h"
#include "util/memory_budget.h"
#include "util/rng.h"

using namespace tapo;
using namespace tapo::bench;

// ---------------------------------------------------------------------------
// Live-byte allocator accounting. Relaxed atomics: the harness is
// single-threaded; we only need totals and a monotone peak.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::int64_t> g_live{0};
std::atomic<std::int64_t> g_peak{0};

void note_alloc(void* p) {
  const auto n = static_cast<std::int64_t>(malloc_usable_size(p));
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  const std::int64_t live = g_live.fetch_add(n, std::memory_order_relaxed) + n;
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  if (live > g_peak.load(std::memory_order_relaxed)) {
    // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
    g_peak.store(live, std::memory_order_relaxed);
  }
}

void* counted_alloc(std::size_t n) {
  if (void* p = std::malloc(n)) {
    note_alloc(p);
    return p;
  }
  throw std::bad_alloc();
}

void counted_free(void* p) {
  if (p == nullptr) return;
  const auto n = static_cast<std::int64_t>(malloc_usable_size(p));
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  g_live.fetch_sub(n, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

/// Peak-above-baseline for one measured region.
struct PeakMeter {
  std::int64_t base = 0;
  void begin() {
    // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
    base = g_live.load(std::memory_order_relaxed);
    // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
    g_peak.store(base, std::memory_order_relaxed);
  }
  std::int64_t peak() const {
    // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
    return g_peak.load(std::memory_order_relaxed) - base;
  }
};

/// Interleaved multi-flow trace: alternating cloud-storage (elephant) and
/// web-search (mouse) flows, merged and time-sorted so many flows are
/// concurrently open — the worst case for a flow-table's residency.
net::PacketTrace build_trace(std::size_t target_bytes, std::size_t max_flows) {
  Rng master(kBenchSeed);
  net::PacketTrace merged;
  std::size_t flows = 0;
  while (merged.size() * sizeof(net::CapturedPacket) < target_bytes &&
         flows < max_flows) {
    const auto& profile = (flows % 2 == 0) ? workload::cloud_storage_profile()
                                           : workload::web_search_profile();
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(profile, flow_rng, flows);
    auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    for (const auto& p : outcome.trace->packets()) merged.add(p);
    ++flows;
  }
  merged.sort_by_time();
  std::printf("trace: %zu flows, %zu packets, %.1f KiB arena\n", flows,
              merged.size(),
              static_cast<double>(merged.size() *
                                  sizeof(net::CapturedPacket)) /
                  1024.0);
  return merged;
}

analysis::LiveConfig unbounded_live_config(util::MemoryBudget* budget) {
  analysis::LiveConfig cfg;
  cfg.with_idle_timeout(Duration::max())
      .with_fin_linger(Duration::max())
      .with_max_flows(std::numeric_limits<std::size_t>::max())
      .with_max_packets_per_flow(std::numeric_limits<std::size_t>::max())
      .with_mem_budget(budget);
  return cfg;
}

double mib(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  init_telemetry(argc, argv);

  const std::size_t max_flows = flows_per_service(600);
  print_banner("Streaming pipeline at scale: bounded memory vs batch",
               "streaming TAPO integration (paper §3.3 deployment)",
               max_flows);

  // Target a ~4 MiB arena (capped by the flow budget) and size the memory
  // budget at arena/12 so the trace is comfortably >= 10x the limit.
  const net::PacketTrace trace =
      build_trace(/*target_bytes=*/4 << 20, max_flows);
  const std::size_t arena_bytes = trace.size() * sizeof(net::CapturedPacket);
  const std::size_t limit = arena_bytes / 12;
  const double ratio =
      static_cast<double>(arena_bytes) / static_cast<double>(limit);

  const auto pcap_path =
      std::filesystem::temp_directory_path() / "tapo_streaming_scale.pcap";
  pcap::write_file(pcap_path.string(), trace);

  bool failed = false;
  std::printf("budget: %.2f MiB limit (trace arena %.2f MiB, %.1fx)\n\n",
              mib(static_cast<std::int64_t>(limit)),
              mib(static_cast<std::int64_t>(arena_bytes)), ratio);
  if (ratio < 10.0) {
    std::printf("FAIL: trace is only %.1fx the budget (need >= 10x)\n", ratio);
    failed = true;
  }

  // ---- batch: whole trace resident ----
  PeakMeter batch_meter;
  std::size_t batch_flows = 0;
  std::size_t batch_packets = 0;
  double batch_secs = 0.0;
  {
    batch_meter.begin();
    const auto t0 = std::chrono::steady_clock::now();
    const net::PacketTrace loaded = pcap::read_file(pcap_path.string());
    analysis::Analyzer analyzer;
    const auto result = analyzer.analyze(loaded);
    batch_secs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    batch_flows = result.flows.size();
    batch_packets = loaded.size();
  }
  const std::int64_t batch_peak = batch_meter.peak();
  std::printf("[batch]  %zu flows, %zu packets in %.2fs, peak %.2f MiB\n",
              batch_flows, batch_packets, batch_secs, mib(batch_peak));

  // ---- streaming: chunked reader + live analyzer on one ledger ----
  util::MemoryBudget budget(limit);
  PeakMeter stream_meter;
  std::size_t stream_flows = 0;
  std::uint64_t stream_packets = 0;
  std::uint64_t evictions = 0;
  double stream_secs = 0.0;
  {
    stream_meter.begin();
    const auto t0 = std::chrono::steady_clock::now();
    pcap::StreamingReader reader(
        pcap_path.string(),
        pcap::StreamingOptions{.chunk_packets = 4096, .budget = &budget});
    analysis::LiveAnalyzer live(
        unbounded_live_config(&budget),
        analysis::LiveAnalyzer::FlowDoneFn(
            [&stream_flows](const analysis::FlowAnalysis&) {
              ++stream_flows;
            }));
    while (auto chunk = reader.next_chunk()) {
      live.add_chunk(*chunk);  // chunk dies each iteration: no double-hold
    }
    live.flush();
    stream_secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    stream_packets = live.stats().packets;
    evictions = live.stats().budget_evictions;
  }
  const std::int64_t stream_peak = stream_meter.peak();
  std::printf("[stream] %zu flow segments, %llu packets in %.2fs, "
              "peak %.2f MiB, ledger high-water %.2f MiB, %llu budget "
              "evictions\n",
              stream_flows, static_cast<unsigned long long>(stream_packets),
              stream_secs, mib(stream_peak),
              mib(static_cast<std::int64_t>(budget.high_water())),
              static_cast<unsigned long long>(evictions));

  std::filesystem::remove(pcap_path);

  // ---- gates ----
  if (budget.high_water() > limit) {
    std::printf("FAIL: ledger high-water %.2f MiB exceeds the %.2f MiB "
                "limit\n",
                mib(static_cast<std::int64_t>(budget.high_water())),
                mib(static_cast<std::int64_t>(limit)));
    failed = true;
  }
  if (budget.resident() != 0) {
    std::printf("FAIL: %zu bytes still charged after flush\n",
                budget.resident());
    failed = true;
  }
  if (stream_peak > static_cast<std::int64_t>(limit)) {
    std::printf("FAIL: streaming allocator peak %.2f MiB exceeds the "
                "%.2f MiB budget\n",
                mib(stream_peak), mib(static_cast<std::int64_t>(limit)));
    failed = true;
  }
  if (batch_peak <= static_cast<std::int64_t>(limit)) {
    std::printf("FAIL: batch peak %.2f MiB under the budget — the trace is "
                "too small for the gate to mean anything\n",
                mib(batch_peak));
    failed = true;
  }
  if (stream_packets != batch_packets) {
    std::printf("FAIL: streaming saw %llu packets, batch saw %zu\n",
                static_cast<unsigned long long>(stream_packets),
                batch_packets);
    failed = true;
  }
  if (stream_flows < batch_flows) {
    std::printf("FAIL: streaming analyzed %zu flow segments < batch's %zu "
                "flows\n",
                stream_flows, batch_flows);
    failed = true;
  }

  write_telemetry_artifacts();
  if (failed) {
    std::printf("RESULT: FAIL\n");
    return 1;
  }
  std::printf("RESULT: OK  (streaming peak %.2fx budget, batch %.2fx)\n",
              static_cast<double>(stream_peak) / static_cast<double>(limit),
              static_cast<double>(batch_peak) / static_cast<double>(limit));
  return 0;
}
