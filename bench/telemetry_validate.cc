// Schema validator for the telemetry artifact directory the benches emit
// with --telemetry-out=<dir>. Used by ctest (telemetry_schema_validate) to
// prove the exporters write what they promise:
//
//   trace.json    {"traceEvents":[...]} — every event has ph/pid/tid/ts/name;
//                 "X" (stall span) events additionally have dur and a
//                 "stall:<cause>" name with args.cause; "M" metadata events
//                 name the run processes.
//   trace.jsonl   one JSON object per line with kind/ts_us/flow.
//   metrics.prom  Prometheus text exposition: "# TYPE <name> <kind>" headers
//                 and "<name>[{labels}] <number>" samples; histogram le
//                 buckets must be cumulative (monotone non-decreasing).
//   metrics.json  {"metrics":[...]} — every entry has name/type and a value
//                 (counter/gauge) or buckets/count/sum (histogram).
//
// Exits 0 when every check passes, 1 with one line per failure otherwise.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.h"

namespace {

using tapo::telemetry::Json;
using tapo::telemetry::json_parse;

int g_failures = 0;

void fail(const std::string& file, const std::string& msg) {
  std::fprintf(stderr, "FAIL %s: %s\n", file.c_str(), msg.c_str());
  ++g_failures;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

bool has_number(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr && v->type() == Json::Type::kNumber;
}

bool has_string(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return v != nullptr && v->type() == Json::Type::kString;
}

void check_chrome_trace(const std::filesystem::path& path) {
  const std::string file = path.filename().string();
  std::string error;
  const auto doc = json_parse(read_file(path), &error);
  if (!doc) return fail(file, "not valid JSON: " + error);
  const Json* events = doc->find("traceEvents");
  if (events == nullptr || events->type() != Json::Type::kArray)
    return fail(file, "missing traceEvents array");
  std::size_t stall_spans = 0;
  for (std::size_t i = 0; i < events->array().size(); ++i) {
    const Json& ev = events->array()[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (ev.type() != Json::Type::kObject) return fail(file, where + " not an object");
    if (!has_string(ev, "ph") || !has_string(ev, "name") ||
        !has_number(ev, "pid") || !has_number(ev, "tid"))
      return fail(file, where + " missing ph/name/pid/tid");
    const std::string ph = ev.find("ph")->str();
    if (ph != "M" && !has_number(ev, "ts"))
      return fail(file, where + " (ph " + ph + ") missing ts");
    if (ph == "X") {
      if (!has_number(ev, "dur")) return fail(file, where + " X event missing dur");
      const std::string& name = ev.find("name")->str();
      if (name.rfind("stall:", 0) != 0)
        return fail(file, where + " X event not a stall span: " + name);
      const Json* args = ev.find("args");
      if (args == nullptr || args->find("cause") == nullptr)
        return fail(file, where + " stall span missing args.cause");
      ++stall_spans;
    }
  }
  std::printf("OK   %s: %zu events, %zu stall spans\n", file.c_str(),
              events->array().size(), stall_spans);
}

void check_jsonl(const std::filesystem::path& path) {
  const std::string file = path.filename().string();
  std::ifstream is(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(is, line)) {
    ++n;
    if (line.empty()) continue;
    std::string error;
    const auto doc = json_parse(line, &error);
    if (!doc)
      return fail(file, "line " + std::to_string(n) + " not valid JSON: " + error);
    if (!has_string(*doc, "kind") || !has_number(*doc, "ts_us") ||
        !has_number(*doc, "flow"))
      return fail(file, "line " + std::to_string(n) + " missing kind/ts_us/flow");
  }
  std::printf("OK   %s: %zu lines\n", file.c_str(), n);
}

bool is_metric_name(const std::string& s) {
  if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_'))
    return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
      return false;
  }
  return true;
}

void check_prometheus(const std::filesystem::path& path) {
  const std::string file = path.filename().string();
  std::ifstream is(path);
  std::string line;
  std::size_t n = 0, samples = 0;
  // Cumulative le-bucket monotonicity, per histogram series.
  std::map<std::string, double> last_bucket;
  while (std::getline(is, line)) {
    ++n;
    const std::string where = "line " + std::to_string(n);
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ss(line.substr(7));
      std::string name, kind;
      ss >> name >> kind;
      if (!is_metric_name(name) ||
          (kind != "counter" && kind != "gauge" && kind != "histogram"))
        return fail(file, where + " malformed # TYPE: " + line);
      continue;
    }
    if (line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) return fail(file, where + " no value: " + line);
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    std::size_t pos = 0;
    double v = 0.0;
    try {
      v = std::stod(value, &pos);
    } catch (...) {
      return fail(file, where + " non-numeric value: " + value);
    }
    if (pos != value.size() && value != "+Inf")
      return fail(file, where + " trailing junk in value: " + value);
    const std::size_t brace = series.find('{');
    const std::string name = series.substr(0, brace);
    if (!is_metric_name(name)) return fail(file, where + " bad metric name: " + name);
    if (brace != std::string::npos && series.back() != '}')
      return fail(file, where + " unterminated label set: " + series);
    if (name.size() > 7 && name.rfind("_bucket") == name.size() - 7) {
      // One monotone sequence per label set minus the le label.
      std::string key = series;
      const std::size_t le = key.find("le=\"");
      if (le == std::string::npos)
        return fail(file, where + " _bucket sample without le label");
      key.erase(le, key.find('"', le + 4) - le + 1);
      auto [it, fresh] = last_bucket.try_emplace(key, v);
      if (!fresh && v + 1e-9 < it->second)
        return fail(file, where + " non-cumulative le buckets: " + series);
      it->second = v;
    }
    ++samples;
  }
  std::printf("OK   %s: %zu samples\n", file.c_str(), samples);
}

void check_metrics_json(const std::filesystem::path& path) {
  const std::string file = path.filename().string();
  std::string error;
  const auto doc = json_parse(read_file(path), &error);
  if (!doc) return fail(file, "not valid JSON: " + error);
  const Json* metrics = doc->find("metrics");
  if (metrics == nullptr || metrics->type() != Json::Type::kArray)
    return fail(file, "missing metrics array");
  for (std::size_t i = 0; i < metrics->array().size(); ++i) {
    const Json& m = metrics->array()[i];
    const std::string where = "metrics[" + std::to_string(i) + "]";
    if (!has_string(m, "name") || !has_string(m, "type"))
      return fail(file, where + " missing name/type");
    const std::string type = m.find("type")->str();
    if (type == "histogram") {
      const Json* buckets = m.find("buckets");
      if (buckets == nullptr || buckets->type() != Json::Type::kArray ||
          !has_number(m, "count") || !has_number(m, "sum"))
        return fail(file, where + " histogram missing buckets/count/sum");
    } else if (type == "counter" || type == "gauge") {
      if (!has_number(m, "value")) return fail(file, where + " missing value");
    } else {
      return fail(file, where + " unknown type: " + type);
    }
  }
  std::printf("OK   %s: %zu metrics\n", file.c_str(), metrics->array().size());
}

}  // namespace

int main(int argc, char** argv) {
  // --prom <file>: validate a single Prometheus exposition file (used by
  // the tapo_agg smoke test) instead of a full artifact directory.
  if (argc == 3 && std::string(argv[1]) == "--prom") {
    const std::filesystem::path prom = argv[2];
    if (!std::filesystem::exists(prom)) {
      fail(prom.string(), "missing");
    } else {
      check_prometheus(prom);
    }
    if (g_failures > 0) {
      std::fprintf(stderr, "%d check(s) failed\n", g_failures);
      return 1;
    }
    std::printf("prometheus file valid\n");
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <telemetry-artifact-dir> | --prom <file>\n",
                 argv[0]);
    return 1;
  }
  const std::filesystem::path dir = argv[1];
  for (const char* name :
       {"trace.json", "trace.jsonl", "metrics.prom", "metrics.json"}) {
    if (!std::filesystem::exists(dir / name)) fail(name, "missing");
  }
  if (g_failures == 0) {
    check_chrome_trace(dir / "trace.json");
    check_jsonl(dir / "trace.jsonl");
    check_prometheus(dir / "metrics.prom");
    check_metrics_json(dir / "metrics.json");
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all telemetry artifacts valid\n");
  return 0;
}
