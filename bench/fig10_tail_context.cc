// Figure 10: context of tail-retransmission stalls — (a) relative position
// CDF; (b) in-flight size CDF.
//
// Paper shape: positions near-uniform for cloud storage (multi-file
// connections) and web search (tiny flows), end-of-flow for software
// download; in-flight mostly 1 for web search, <=3 elsewhere.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 10: context for tail-retransmission stalls",
               "Fig. 10a/10b (paper §4.2)", flows);
  const auto runs = run_all_services(flows);

  std::printf("-- Fig. 10a: relative position of the tail stall --\n");
  for (const auto& run : runs) {
    print_cdf(to_string(run.service),
              analysis::stall_position_cdf(run.result.analyses,
                                           analysis::RetransCause::kTailRetrans),
              "");
  }
  std::printf("(paper: uniform for cloud storage & web search; skewed to the "
              "flow end for software download)\n\n");

  std::printf("-- Fig. 10b: in-flight size at the tail stall --\n");
  for (const auto& run : runs) {
    print_cdf(to_string(run.service),
              analysis::stall_inflight_cdf(run.result.analyses,
                                           analysis::RetransCause::kTailRetrans),
              " pkts");
  }
  std::printf("(paper: mostly 1 for web search; <=3 for the others)\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
