// Table 9: retransmitted-packet ratio under native Linux, TLP and S-RTO.
//
// Paper: web search 2.2 / 2.3 / 3.0 %, cloud storage 2.7 / 2.9 / 3.9 % —
// the probes cost a modest amount of extra (sometimes unnecessary)
// retransmission.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;
using tcp::RecoveryMechanism;

namespace {

double ratio_for(workload::Service svc, RecoveryMechanism mech,
                 std::size_t flows) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::profile_for(svc);
  cfg.flows = flows;
  cfg.seed = kBenchSeed;
  cfg.analyze = false;
  cfg.recovery = mech;
  return workload::run_experiment(cfg, bench_threads()).retrans_ratio() * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service(600);
  print_banner("Table 9: retransmission packet ratio (%)",
               "Table 9 (paper §5.2)", flows);

  constexpr double kPaper[2][3] = {{2.2, 2.3, 3.0}, {2.7, 2.9, 3.9}};
  const workload::Service services[2] = {workload::Service::kWebSearch,
                                         workload::Service::kCloudStorage};
  const char* names[2] = {"web search", "cloud storage"};

  stats::Table t;
  t.set_header({"", "Linux (paper)", "TLP (paper)", "S-RTO (paper)"});
  for (int s = 0; s < 2; ++s) {
    std::vector<std::string> row{names[s]};
    int m = 0;
    for (auto mech : {RecoveryMechanism::kNative, RecoveryMechanism::kTlp,
                      RecoveryMechanism::kSrto}) {
      row.push_back(str_format("%.1f%% (%.1f%%)",
                               ratio_for(services[s], mech, flows),
                               kPaper[s][m++]));
    }
    t.add_row(row);
  }
  std::printf("%s", t.render().c_str());
  std::printf("\npaper shape check: Linux <= TLP <= S-RTO, with S-RTO's "
              "extra retransmissions staying moderate.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
