// Table 5: breakdown of timeout-retransmission stalls by cause, by volume
// (#) and time (T), for the three services.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;
using analysis::RetransCause;

namespace {

struct PaperCell {
  double vol, time;
};

// Rows: double, tail, small cwnd, small rwnd, cont. loss, ack delay/loss,
// undetermined. Columns: cloud, soft, web.
constexpr PaperCell kPaper[7][3] = {
    {{26.7, 45.4}, {41.2, 60.8}, {25.6, 41.9}},
    {{4.8, 5.0}, {0.4, 0.4}, {44.4, 36.0}},
    {{35.2, 27.3}, {16.9, 7.2}, {15.2, 11.6}},
    {{0.4, 0.3}, {10.6, 3.7}, {0.87, 0.3}},
    {{19.0, 10.1}, {5.6, 1.6}, {0.6, 0.6}},
    {{6.3, 6.5}, {14.9, 22.2}, {2.1, 1.8}},
    {{7.4, 6.1}, {10.3, 4.4}, {11.1, 7.8}},
};

constexpr RetransCause kRows[7] = {
    RetransCause::kDoubleRetrans, RetransCause::kTailRetrans,
    RetransCause::kSmallCwnd,     RetransCause::kSmallRwnd,
    RetransCause::kContinuousLoss, RetransCause::kAckDelayLoss,
    RetransCause::kUndetermined,
};

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner(
      "Table 5: timeout-retransmission stall breakdown (# / T, %)",
      "Table 5 (paper §4)", flows);
  const auto runs = run_all_services(flows);

  std::vector<analysis::RetransBreakdown> bds;
  for (const auto& run : runs) {
    bds.push_back(analysis::make_retrans_breakdown(run.result.analyses));
  }

  stats::Table table;
  table.set_header({"stall type", "cloud # (ppr)", "cloud T (ppr)",
                    "soft # (ppr)", "soft T (ppr)", "web # (ppr)",
                    "web T (ppr)"});
  for (int r = 0; r < 7; ++r) {
    std::vector<std::string> row{analysis::to_string(kRows[r])};
    for (int s = 0; s < 3; ++s) {
      const auto& bd = bds[static_cast<std::size_t>(s)];
      row.push_back(str_format("%5.1f (%4.1f)",
                               bd.volume_fraction(kRows[r]) * 100,
                               kPaper[r][s].vol));
      row.push_back(str_format("%5.1f (%4.1f)",
                               bd.time_fraction(kRows[r]) * 100,
                               kPaper[r][s].time));
    }
    table.add_row(row);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nretransmission stalls: cloud=%llu soft=%llu web=%llu\n",
              static_cast<unsigned long long>(bds[0].total_count),
              static_cast<unsigned long long>(bds[1].total_count),
              static_cast<unsigned long long>(bds[2].total_count));
  std::printf("paper shape checks: double retransmission is the most "
              "expensive type everywhere;\ntail retransmissions matter most "
              "for web search; small-rwnd appears mainly in software "
              "download.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
