// Figure 1: (a) CDF of per-flow RTT and RTO; (b) CDF of RTO/RTT.
//
// Paper shape: RTO is much larger than RTT ("very conservative algorithm");
// for over 40% of software-download and web-search flows the RTO is an
// order of magnitude larger than the RTT.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 1: distribution of RTT and RTO",
               "Fig. 1a/1b (paper §2.1)", flows);
  const auto runs = run_all_services(flows);

  std::printf("-- Fig. 1a: per-flow RTT and RTO (ms) --\n");
  for (const auto& run : runs) {
    print_cdf(std::string(to_string(run.service)) + " RTT",
              analysis::flow_rtt_cdf_ms(run.result.analyses), "ms");
  }
  for (const auto& run : runs) {
    print_cdf(std::string(to_string(run.service)) + " RTO",
              analysis::flow_rto_cdf_ms(run.result.analyses), "ms");
  }

  std::printf("\n-- Fig. 1b: RTO / RTT ratio --\n");
  for (const auto& run : runs) {
    const auto cdf = analysis::rto_over_rtt_cdf(run.result.analyses);
    print_cdf(to_string(run.service), cdf, "");
    if (!cdf.empty()) {
      std::printf("  P(RTO/RTT > 10) = %.0f%%  (paper: >40%% for software "
                  "download and web search)\n",
                  (1.0 - cdf.fraction_at_most(10.0)) * 100.0);
    }
  }
  std::printf("\npaper shape check: avg RTO is ~1 order of magnitude above "
              "avg RTT in all services.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
