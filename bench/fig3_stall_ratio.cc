// Figure 3: CDF of stalled time / transmission time per flow.
//
// Paper shape: 43% of software-download and 38% of cloud-storage flows
// stall at least once; over 20% of their flows spend more than half their
// lifetime stalled; web search is the least affected.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 3: ratio of stalled time to transmission time",
               "Fig. 3 (paper §2.2)", flows);
  const auto runs = run_all_services(flows);

  for (const auto& run : runs) {
    const auto cdf = analysis::stall_ratio_cdf(run.result.analyses);
    print_cdf(to_string(run.service), cdf, "");
    if (!cdf.empty()) {
      const double stalled_frac = 1.0 - cdf.fraction_at_most(0.0);
      const double half_life = 1.0 - cdf.fraction_at_most(0.5);
      std::printf("  flows with >=1 stall: %.0f%%   flows stalled >50%% of "
                  "lifetime: %.0f%%\n",
                  stalled_frac * 100, half_life * 100);
    }
  }
  std::printf("\npaper: cloud 38%% / software 43%% stall at least once; "
              ">20%% of their flows stalled for half their lifetime;\n"
              "web search least affected.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
