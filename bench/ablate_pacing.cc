// Ablation: TCP pacing vs continuous-loss stalls.
//
// §4.3 suggests that continuous-loss stalls (a whole window dropped by a
// full middlebox buffer) could be mitigated by "spacing out the
// transmission of packets in a window across one RTT" (TCP pacing, [21]).
// This bench tests that suggestion: same cloud-storage workload, bursty
// sender vs paced sender, through shallow bottleneck queues.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

namespace {

struct Outcome {
  std::uint64_t stalls = 0;
  std::uint64_t contloss_stalls = 0;
  double contloss_time = 0;
  double total_stall_time = 0;
  double avg_speed = 0;
  double retrans_pct = 0;
};

Outcome run(bool pacing, std::size_t flows) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::cloud_storage_profile();
  // Emphasize the §4.3 scenario: every flow crosses a shallow-buffer
  // bottleneck, so window bursts overflow the queue.
  cfg.profile.path.bottleneck_prob = 1.0;
  cfg.profile.path.bottleneck_queue_min = 10;
  cfg.profile.path.bottleneck_queue_max = 24;
  cfg.profile.sender.pacing = pacing;
  cfg.flows = flows;
  cfg.seed = kBenchSeed;
  const auto res = workload::run_experiment(cfg, bench_threads());

  Outcome out;
  for (const auto& fa : res.analyses) {
    out.stalls += fa.stalls.size();
    out.total_stall_time += fa.stalled_time.sec();
    for (const auto& s : fa.stalls) {
      if (s.retrans_cause == analysis::RetransCause::kContinuousLoss) {
        ++out.contloss_stalls;
        out.contloss_time += s.duration.sec();
      }
    }
  }
  out.avg_speed = analysis::make_service_summary(res.analyses).avg_speed_Bps;
  out.retrans_pct = res.retrans_ratio() * 100.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service(250);
  print_banner("Ablation: TCP pacing vs continuous-loss stalls",
               "the mitigation suggested in §4.3 [21]", flows);

  const auto bursty = run(false, flows);
  const auto paced = run(true, flows);

  stats::Table t;
  t.set_header({"sender", "cont-loss stalls", "cont-loss time(s)",
                "all stalls", "stall time(s)", "avg speed", "retrans%"});
  auto row = [&](const char* name, const Outcome& o) {
    t.add_row({name, str_format("%llu", static_cast<unsigned long long>(o.contloss_stalls)),
               str_format("%.1f", o.contloss_time),
               str_format("%llu", static_cast<unsigned long long>(o.stalls)),
               str_format("%.1f", o.total_stall_time),
               human_bytes(o.avg_speed) + "/s",
               str_format("%.1f%%", o.retrans_pct)});
  };
  row("bursty (native)", bursty);
  row("paced", paced);
  std::printf("%s", t.render().c_str());
  std::printf("\nreading: pacing drains bursts into shallow queues, cutting "
              "continuous-loss stalls\n(and queue drops) at little cost — "
              "confirming the paper's §4.3 suggestion.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
