// Table 6: f-double vs t-double share of double-retransmission stall time.
//
// Paper: f-double contributes more than half of double-retrans stall time
// in all three services (62.3% / 52.7% / 55.6%) — the motivation for S-RTO.
#include <cstdio>

#include "common.h"
#include "util/strings.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Table 6: double-retransmission stall types (share of time)",
               "Table 6 (paper §4.1)", flows);
  const auto runs = run_all_services(flows);

  constexpr double kPaperF[3] = {62.3, 52.7, 55.6};

  stats::Table table;
  table.set_header({"", "cloud s.", "software d.", "web search"});
  std::vector<std::string> frow{"f-double stall"}, trow{"t-double stall"};
  for (std::size_t s = 0; s < 3; ++s) {
    const auto bd = analysis::make_retrans_breakdown(runs[s].result.analyses);
    const double total =
        (bd.f_double_time + bd.t_double_time).sec();
    const double f =
        total > 0 ? bd.f_double_time.sec() / total * 100 : 0.0;
    frow.push_back(str_format("%.1f%% (paper %.1f%%)", f, kPaperF[s]));
    trow.push_back(
        str_format("%.1f%% (paper %.1f%%)", total > 0 ? 100 - f : 0.0,
                   100 - kPaperF[s]));
  }
  table.add_row(frow);
  table.add_row(trow);
  std::printf("%s", table.render().c_str());
  std::printf("\npaper shape check: f-double (fast retransmit lost again) "
              "contributes the majority of double-retrans stall time.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
