// Library micro-benchmarks (google-benchmark): how fast the simulator and
// the TAPO analyzer run. Useful for sizing large trace analyses.
#include <benchmark/benchmark.h>

#include <sstream>

#include "pcap/pcap.h"
#include "sim/simulator.h"
#include "tapo/analyzer.h"
#include "telemetry/telemetry.h"
#include "util/env.h"
#include "workload/experiment.h"
#include "workload/runner.h"

using namespace tapo;

namespace {

/// Pre-simulated trace shared by the analyzer benchmarks.
const net::PacketTrace& sample_trace() {
  static const net::PacketTrace trace = [] {
    workload::ExperimentConfig cfg;
    cfg.profile = workload::cloud_storage_profile();
    Rng master(99);
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, 1);
    auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    return std::move(*outcome.trace);
  }();
  return trace;
}

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(Duration::micros(i), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_SimulateOneFlow(benchmark::State& state) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  Rng master(7);
  for (auto _ : state) {
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, 1);
    const auto outcome = workload::run_flow(scenario, flow_rng.split(),
                                            Duration::seconds(600.0));
    benchmark::DoNotOptimize(outcome.completed);
  }
}
BENCHMARK(BM_SimulateOneFlow);

// The sharded experiment runner on the standard 400-flow workload
// (TAPO_BENCH_FLOWS overrides), at 1/2/4 worker threads. Results are
// bit-identical across thread counts; only wall clock changes.
void BM_RunExperimentThreads(benchmark::State& state) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  cfg.flows = util::env_positive_size("TAPO_BENCH_FLOWS", 400);
  cfg.seed = 2015;
  for (auto _ : state) {
    workload::RunOptions options;
    options.threads = static_cast<std::size_t>(state.range(0));
    workload::ParallelRunner runner(cfg, std::move(options));
    workload::BreakdownSink sink;
    const auto stats = runner.run(sink);
    benchmark::DoNotOptimize(sink.retrans_ratio());
    state.counters["flows_per_s"] = stats.flows_per_second;
    state.counters["util"] = stats.worker_utilization;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.flows));
}
BENCHMARK(BM_RunExperimentThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Telemetry overhead: the same single-flow simulate+analyze loop as
// BM_SimulateOneFlow, with tracing + metrics fully off (the shipped
// default — one relaxed load per instrumentation site) vs fully on
// (tracer recording control+lifecycle events, registry counting).
// Arg(0) = disabled, Arg(1) = enabled. The acceptance bar is the
// *disabled* case: <= 2% over a build with the hooks compiled out.
void BM_TelemetryOverhead(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  if (on) {
    telemetry::enable_all();
  } else {
    telemetry::disable_and_reset_all();
  }
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  analysis::Analyzer analyzer;
  Rng master(7);
  for (auto _ : state) {
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, 1);
    const auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    auto result = analyzer.analyze(*outcome.trace);
    benchmark::DoNotOptimize(result.flows.size());
  }
  telemetry::disable_and_reset_all();
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Name("telemetry_overhead");

void BM_AnalyzeTrace(benchmark::State& state) {
  const auto& trace = sample_trace();
  analysis::Analyzer analyzer;
  for (auto _ : state) {
    auto result = analyzer.analyze(trace);
    benchmark::DoNotOptimize(result.flows.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_AnalyzeTrace);

void BM_PcapWrite(benchmark::State& state) {
  const auto& trace = sample_trace();
  for (auto _ : state) {
    std::stringstream ss;
    pcap::write_stream(ss, trace);
    benchmark::DoNotOptimize(ss.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapWrite);

void BM_PcapRead(benchmark::State& state) {
  const auto& trace = sample_trace();
  std::stringstream base;
  pcap::write_stream(base, trace);
  const std::string bytes = base.str();
  for (auto _ : state) {
    std::stringstream ss(bytes);
    auto back = pcap::read_stream(ss);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapRead);

}  // namespace

BENCHMARK_MAIN();
