// Library micro-benchmarks (google-benchmark): how fast the simulator and
// the TAPO analyzer run. Useful for sizing large trace analyses.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "pcap/pcap.h"
#include "sim/simulator.h"
#include "tapo/analyzer.h"
#include "telemetry/telemetry.h"
#include "util/env.h"
#include "workload/experiment.h"
#include "workload/runner.h"

using namespace tapo;

// ---------------------------------------------------------------------------
// Global allocation counter, used by the copy-vs-view A/B benchmarks to
// demonstrate that the view path does zero per-packet allocations. Relaxed
// atomics: the benchmarks are single-threaded; we only need totals.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct AllocSnapshot {
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  std::uint64_t count = g_alloc_count.load(std::memory_order_relaxed);
  // tapo-lint: allow(relaxed-atomic) — single-thread bench counters
  std::uint64_t bytes = g_alloc_bytes.load(std::memory_order_relaxed);
};

/// Pre-simulated trace shared by the analyzer benchmarks.
const net::PacketTrace& sample_trace() {
  static const net::PacketTrace trace = [] {
    workload::ExperimentConfig cfg;
    cfg.profile = workload::cloud_storage_profile();
    Rng master(99);
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, 1);
    auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    return std::move(*outcome.trace);
  }();
  return trace;
}

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      sim.schedule(Duration::micros(i), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_SimulateOneFlow(benchmark::State& state) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  Rng master(7);
  for (auto _ : state) {
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, 1);
    const auto outcome = workload::run_flow(scenario, flow_rng.split(),
                                            Duration::seconds(600.0));
    benchmark::DoNotOptimize(outcome.completed);
  }
}
BENCHMARK(BM_SimulateOneFlow);

// The sharded experiment runner on the standard 400-flow workload
// (TAPO_BENCH_FLOWS overrides), at 1/2/4 worker threads. Results are
// bit-identical across thread counts; only wall clock changes.
void BM_RunExperimentThreads(benchmark::State& state) {
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  cfg.flows = util::env_positive_size("TAPO_BENCH_FLOWS", 400);
  cfg.seed = 2015;
  for (auto _ : state) {
    workload::RunOptions options;
    options.threads = static_cast<std::size_t>(state.range(0));
    workload::ParallelRunner runner(cfg, std::move(options));
    workload::BreakdownSink sink;
    const auto stats = runner.run(sink);
    benchmark::DoNotOptimize(sink.retrans_ratio());
    state.counters["flows_per_s"] = stats.flows_per_second;
    state.counters["util"] = stats.worker_utilization;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cfg.flows));
}
BENCHMARK(BM_RunExperimentThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Telemetry overhead: the same single-flow simulate+analyze loop as
// BM_SimulateOneFlow, with tracing + metrics fully off (the shipped
// default — one relaxed load per instrumentation site) vs fully on
// (tracer recording control+lifecycle events, registry counting).
// Arg(0) = disabled, Arg(1) = enabled. The acceptance bar is the
// *disabled* case: <= 2% over a build with the hooks compiled out.
void BM_TelemetryOverhead(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  if (on) {
    telemetry::enable_all();
  } else {
    telemetry::disable_and_reset_all();
  }
  workload::ExperimentConfig cfg;
  cfg.profile = workload::web_search_profile();
  analysis::Analyzer analyzer;
  Rng master(7);
  for (auto _ : state) {
    Rng flow_rng = master.split();
    const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, 1);
    const auto outcome =
        workload::run_flow(scenario, flow_rng.split(), Duration::seconds(600.0),
                           workload::TraceCapture::kServerNic);
    auto result = analyzer.analyze(*outcome.trace);
    benchmark::DoNotOptimize(result.flows.size());
  }
  telemetry::disable_and_reset_all();
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Name("telemetry_overhead");

/// A 32-flow cloud-storage trace merged into one arena — the demux and
/// analyzer A/B benchmarks need multiple interleaved flows to be honest.
const net::PacketTrace& multi_flow_trace() {
  static const net::PacketTrace trace = [] {
    workload::ExperimentConfig cfg;
    cfg.profile = workload::cloud_storage_profile();
    Rng master(99);
    net::PacketTrace merged;
    for (std::uint64_t f = 0; f < 32; ++f) {
      Rng flow_rng = master.split();
      const auto scenario = workload::draw_scenario(cfg.profile, flow_rng, f);
      auto outcome = workload::run_flow(scenario, flow_rng.split(),
                                        Duration::seconds(600.0),
                                        workload::TraceCapture::kServerNic);
      for (const auto& p : outcome.trace->packets()) merged.add(p);
    }
    merged.sort_by_time();
    return merged;
  }();
  return trace;
}

/// Demux A/B: Arg(0) = copying demux_flows, Arg(1) = zero-copy
/// demux_flow_views. Reports per-packet allocation and byte costs of each
/// representation alongside throughput.
void BM_Demux(benchmark::State& state) {
  const bool view = state.range(0) != 0;
  const auto& trace = multi_flow_trace();
  const auto pkts = static_cast<double>(trace.size());
  AllocSnapshot before;
  std::uint64_t rep_bytes = 0;
  for (auto _ : state) {
    if (view) {
      const auto views = analysis::demux_flow_views(trace);
      rep_bytes = views.index_bytes();
      benchmark::DoNotOptimize(views.size());
    } else {
      const auto flows = analysis::demux_flows(trace);
      rep_bytes = 0;
      for (const auto& f : flows) {
        rep_bytes += f.packets.size() * sizeof(analysis::FlowPacket) +
                     f.sack_pool.size() * sizeof(net::SackBlock);
      }
      benchmark::DoNotOptimize(flows.size());
    }
  }
  const AllocSnapshot after;
  const double iters = static_cast<double>(state.iterations());
  state.counters["allocs_per_pkt"] =
      static_cast<double>(after.count - before.count) / iters / pkts;
  state.counters["alloc_B_per_pkt"] =
      static_cast<double>(after.bytes - before.bytes) / iters / pkts;
  state.counters["rep_B_per_pkt"] = static_cast<double>(rep_bytes) / pkts;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_Demux)->Arg(0)->Arg(1);

/// Analyzer A/B over the same trace: Arg(0) = materialize owning Flows and
/// analyze those; Arg(1) = analyze FlowViews straight off the arena (the
/// Analyzer::analyze default). Classification output is identical by
/// construction (shared cursor-templated mimic) and by test.
void BM_AnalyzeTrace(benchmark::State& state) {
  const bool view = state.range(0) != 0;
  const auto& trace = multi_flow_trace();
  analysis::Analyzer analyzer;
  AllocSnapshot before;
  for (auto _ : state) {
    if (view) {
      auto result = analyzer.analyze(trace);
      benchmark::DoNotOptimize(result.flows.size());
    } else {
      const auto flows = analysis::demux_flows(trace);
      std::size_t n = 0;
      for (const auto& f : flows) n += analyzer.analyze_flow(f).stalls.size();
      benchmark::DoNotOptimize(n);
    }
  }
  const AllocSnapshot after;
  const double iters = static_cast<double>(state.iterations());
  const auto pkts = static_cast<double>(trace.size());
  state.counters["allocs_per_pkt"] =
      static_cast<double>(after.count - before.count) / iters / pkts;
  state.counters["arena_B_per_pkt"] =
      static_cast<double>(trace.capacity_bytes()) / pkts;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_AnalyzeTrace)->Arg(0)->Arg(1);

void BM_PcapWrite(benchmark::State& state) {
  const auto& trace = sample_trace();
  for (auto _ : state) {
    std::stringstream ss;
    pcap::write_stream(ss, trace);
    benchmark::DoNotOptimize(ss.str().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapWrite);

void BM_PcapRead(benchmark::State& state) {
  const auto& trace = sample_trace();
  std::stringstream base;
  pcap::write_stream(base, trace);
  const std::string bytes = base.str();
  for (auto _ : state) {
    std::stringstream ss(bytes);
    auto back = pcap::read_stream(ss);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PcapRead);

}  // namespace

BENCHMARK_MAIN();
