// Figure 12: CDF of the in-flight size when continuous-loss stalls happen
// (cloud storage and software download; web search barely has any).
//
// Paper shape: 4 to >20 packets, median ~5.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 12: in-flight size at continuous-loss stalls",
               "Fig. 12 (paper §4.3)", flows);
  const auto runs = run_all_services(flows);

  for (const auto& run : runs) {
    if (run.service == workload::Service::kWebSearch) continue;
    print_cdf(to_string(run.service),
              analysis::stall_inflight_cdf(
                  run.result.analyses, analysis::RetransCause::kContinuousLoss),
              " pkts");
  }
  std::printf("\npaper: whole windows of 4 to >20 packets vanish at once "
              "(median ~5) — middlebox buffer exhaustion.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
