// Shared plumbing for the bench binaries: runs the calibrated service
// workloads, and prints paper-vs-measured tables.
//
// Every bench accepts two environment variables:
//   TAPO_BENCH_FLOWS   flows per service (default 400)
//   TAPO_BENCH_THREADS worker threads for the sharded runner (default 1;
//                      0 = all hardware threads). Results are bit-identical
//                      for any thread count — only wall clock changes.
//   TAPO_BENCH_SHARDS  simulated server shards for the fleet-aggregation
//                      benches (default 4); a --shards=N flag wins over it.
// Seeds are fixed so output is reproducible. Malformed values warn and
// fall back to the default instead of silently changing the experiment.
//
// Telemetry: pass --telemetry-out=<dir> (or set TAPO_TELEMETRY_OUT=<dir>)
// to any bench to enable the tracer + metrics registry and write
//   <dir>/trace.json    Chrome trace_event JSON (chrome://tracing, Perfetto)
//   <dir>/trace.jsonl   one event per line, for scripting
//   <dir>/metrics.prom  Prometheus text exposition snapshot
//   <dir>/metrics.json  the same snapshot as JSON
// on exit. TAPO_TELEMETRY_SAMPLE=<n> records every n-th flow only;
// TAPO_TELEMETRY_PACKETS=1 adds the high-volume per-segment events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/cdf.h"
#include "stats/table.h"
#include "tapo/report.h"
#include "workload/experiment.h"
#include "workload/runner.h"

namespace tapo::bench {

/// Flow count per service: TAPO_BENCH_FLOWS env var, else `dflt`.
std::size_t flows_per_service(std::size_t dflt = 400);

/// Worker threads: TAPO_BENCH_THREADS env var, else `dflt` (0 = all cores).
std::size_t bench_threads(std::size_t dflt = 1);

/// Shard count for the fleet-aggregation benches: a --shards=N argv flag
/// (record it with init_shards) beats the TAPO_BENCH_SHARDS env var, which
/// beats `dflt`. Malformed values warn and fall back, like the other
/// knobs.
std::size_t bench_shards(std::size_t dflt = 4);

/// Scans argv for --shards=N and records the override for bench_shards().
/// Unknown arguments are left alone; call alongside init_telemetry.
void init_shards(int argc, char** argv);

/// Enables telemetry when --telemetry-out=<dir> appears in argv or
/// TAPO_TELEMETRY_OUT is set (see file header). Call first in main();
/// unknown arguments are left alone.
void init_telemetry(int argc, char** argv);

/// Writes the telemetry artifacts to the directory chosen at
/// init_telemetry time (no-op when telemetry was never enabled). Call last
/// in main(), after all runs have completed.
void write_telemetry_artifacts();

constexpr std::uint64_t kBenchSeed = 2015;  // CoNEXT '15

struct ServiceRun {
  workload::Service service;
  workload::ExperimentResult result;
  workload::RunStats perf;
};

/// Runs all three services with the calibrated profiles on bench_threads()
/// workers, printing a one-line perf banner per service.
std::vector<ServiceRun> run_all_services(std::size_t flows,
                                         std::uint64_t seed = kBenchSeed,
                                         bool analyze = true);

/// Prints "[perf] ..." — wall clock, throughput, per-phase worker time and
/// utilization for one run.
void print_perf(const std::string& label, const workload::RunStats& stats);

/// Prints the standard bench banner.
void print_banner(const std::string& title, const std::string& paper_ref,
                  std::size_t flows);

/// Renders a CDF as "x f" rows at the given quantiles.
void print_cdf(const std::string& name, const stats::Cdf& cdf,
               const std::string& unit,
               const std::vector<double>& quantiles = {0.1, 0.25, 0.5, 0.75,
                                                       0.9, 0.99});

/// Formats "measured (paper X)" comparison cells.
std::string vs_paper(double measured, double paper, const char* fmt = "%.1f");

}  // namespace tapo::bench
