// Shared plumbing for the bench binaries: runs the calibrated service
// workloads, and prints paper-vs-measured tables.
//
// Every bench accepts the environment variable TAPO_BENCH_FLOWS to scale
// the number of simulated flows per service (default 400). Seeds are fixed
// so output is reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/cdf.h"
#include "stats/table.h"
#include "tapo/report.h"
#include "workload/experiment.h"

namespace tapo::bench {

/// Flow count per service: TAPO_BENCH_FLOWS env var, else `dflt`.
std::size_t flows_per_service(std::size_t dflt = 400);

constexpr std::uint64_t kBenchSeed = 2015;  // CoNEXT '15

struct ServiceRun {
  workload::Service service;
  workload::ExperimentResult result;
};

/// Runs all three services with the calibrated profiles.
std::vector<ServiceRun> run_all_services(std::size_t flows,
                                         std::uint64_t seed = kBenchSeed,
                                         bool analyze = true);

/// Prints the standard bench banner.
void print_banner(const std::string& title, const std::string& paper_ref,
                  std::size_t flows);

/// Renders a CDF as "x f" rows at the given quantiles.
void print_cdf(const std::string& name, const stats::Cdf& cdf,
               const std::string& unit,
               const std::vector<double>& quantiles = {0.1, 0.25, 0.5, 0.75,
                                                       0.9, 0.99});

/// Formats "measured (paper X)" comparison cells.
std::string vs_paper(double measured, double paper, const char* fmt = "%.1f");

}  // namespace tapo::bench
