// Figure 11: CDF of the in-flight size computed on every ACK.
//
// Paper shape: ~20% of cloud-storage/software-download samples are below 4
// (fast retransmit impossible on a drop); ~23% of web-search samples are 1.
#include <cstdio>

#include "common.h"

using namespace tapo;
using namespace tapo::bench;

int main(int argc, char** argv) {
  tapo::bench::init_telemetry(argc, argv);
  const std::size_t flows = flows_per_service();
  print_banner("Figure 11: in-flight size on each ACK",
               "Fig. 11 (paper §4.3)", flows);
  const auto runs = run_all_services(flows);

  for (const auto& run : runs) {
    const auto cdf = analysis::inflight_on_ack_cdf(run.result.analyses);
    print_cdf(to_string(run.service), cdf, " pkts");
    if (!cdf.empty()) {
      std::printf("  P(in_flight < 4) = %.0f%%   P(in_flight <= 1) = %.0f%%\n",
                  cdf.fraction_at_most(3.0) * 100,
                  cdf.fraction_at_most(1.0) * 100);
    }
  }
  std::printf("\npaper: ~20%% of cloud/software samples below 4; ~23%% of "
              "web-search samples are exactly 1.\n");
  tapo::bench::write_telemetry_artifacts();
  return 0;
}
